// RingTraceBuffer — bounded, allocation-free-after-construction trace sink.
//
// Keeps the most recent `capacity` events of a run in a circular buffer, the
// right tool for "always-on" tracing of long campaigns: memory is constant,
// recording is a store plus an index increment (no locks — sinks are
// per-thread, see trace_sink.hpp), and after a failure the tail of the
// stream — the events leading up to the problem — is still available.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/trace_sink.hpp"

namespace sjs::obs {

class RingTraceBuffer : public TraceSink {
 public:
  explicit RingTraceBuffer(std::size_t capacity);

  void record(const TraceEvent& event) override;

  std::size_t capacity() const { return buffer_.size(); }
  /// Number of events currently retained (<= capacity).
  std::size_t size() const;
  /// Total events ever recorded.
  std::uint64_t total_recorded() const { return total_; }
  /// Events overwritten because the buffer wrapped.
  std::uint64_t dropped() const;

  /// The retained events in chronological order (oldest first).
  std::vector<TraceEvent> events() const;

 private:
  std::vector<TraceEvent> buffer_;
  std::size_t next_ = 0;      // write position
  std::uint64_t total_ = 0;
};

}  // namespace sjs::obs
