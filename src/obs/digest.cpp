#include "obs/digest.hpp"

#include <bit>
#include "util/fp.hpp"

namespace sjs::obs {

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

std::uint64_t double_bits(double x) {
  if (fp::is_zero(x)) x = 0.0;  // collapse -0.0 and +0.0
  return std::bit_cast<std::uint64_t>(x);
}

std::uint64_t fold_event(std::uint64_t digest, const TraceEvent& event) {
  digest = mix64(digest ^ double_bits(event.time));
  digest = mix64(digest ^ (static_cast<std::uint64_t>(event.kind) |
                           (static_cast<std::uint64_t>(
                                static_cast<std::uint32_t>(event.job))
                            << 8) |
                           (static_cast<std::uint64_t>(
                                static_cast<std::uint32_t>(event.server))
                            << 40)));
  digest = mix64(digest ^ double_bits(event.a));
  digest = mix64(digest ^ double_bits(event.b));
  return digest;
}

std::uint64_t combine_digests(const std::vector<std::uint64_t>& digests) {
  std::uint64_t h = kDigestSeed;
  for (std::uint64_t d : digests) h = mix64(h ^ d);
  return h;
}

}  // namespace sjs::obs
