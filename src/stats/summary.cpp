#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "stats/welford.hpp"
#include "util/logging.hpp"

namespace sjs {

double quantile_sorted(const std::vector<double>& sorted, double q) {
  SJS_CHECK_MSG(!sorted.empty(), "quantile of empty sample");
  SJS_CHECK(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::vector<double> samples) {
  Summary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  Welford w;
  for (double x : samples) w.add(x);
  s.count = samples.size();
  s.mean = w.mean();
  s.stddev = w.stddev_sample();
  s.sem = w.sem();
  s.min = samples.front();
  s.max = samples.back();
  s.median = quantile_sorted(samples, 0.5);
  s.p05 = quantile_sorted(samples, 0.05);
  s.p95 = quantile_sorted(samples, 0.95);
  s.p99 = quantile_sorted(samples, 0.99);
  s.ci95_lo = s.mean - 1.959963984540054 * s.sem;
  s.ci95_hi = s.mean + 1.959963984540054 * s.sem;
  return s;
}

}  // namespace sjs
