#include "stats/histogram.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/logging.hpp"

namespace sjs {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  SJS_CHECK_MSG(hi > lo, "histogram range must be non-empty");
  SJS_CHECK_MSG(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                      static_cast<double>(counts_.size()));
  bin = std::min(bin, counts_.size() - 1);
  ++counts_[bin];
}

void Histogram::merge(const Histogram& other) {
  SJS_CHECK_MSG(other.lo_ == lo_ && other.hi_ == hi_ &&
                    other.counts_.size() == counts_.size(),
                "histogram merge requires identical binning");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

std::string Histogram::render(int max_width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  char buf[64];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "[%8.3g, %8.3g) %8llu |", bin_lo(i),
                  bin_hi(i), static_cast<unsigned long long>(counts_[i]));
    os << buf;
    const int bar = static_cast<int>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        max_width);
    os << std::string(static_cast<std::size_t>(bar), '#') << "\n";
  }
  if (underflow_) os << "underflow: " << underflow_ << "\n";
  if (overflow_) os << "overflow: " << overflow_ << "\n";
  return os.str();
}

}  // namespace sjs
