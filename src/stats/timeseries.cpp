#include "stats/timeseries.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace sjs {

StepFunction::StepFunction(std::vector<double> times,
                           std::vector<double> values, double before)
    : times_(std::move(times)), values_(std::move(values)), before_(before) {
  SJS_CHECK_MSG(times_.size() == values_.size(),
                "times/values length mismatch");
  SJS_CHECK_MSG(std::is_sorted(times_.begin(), times_.end()),
                "breakpoints must be non-decreasing");
}

void StepFunction::append(double t, double value) {
  SJS_CHECK_MSG(times_.empty() || t >= times_.back(),
                "append out of order: " << t << " < " << times_.back());
  // Collapse a same-instant update into a single step (the later value wins;
  // the function stays right-continuous).
  if (!times_.empty() && t == times_.back()) {
    values_.back() = value;
    return;
  }
  times_.push_back(t);
  values_.push_back(value);
}

double StepFunction::value_at(double t) const {
  // First breakpoint strictly greater than t, then step back one.
  auto it = std::upper_bound(times_.begin(), times_.end(), t);
  if (it == times_.begin()) return before_;
  return values_[static_cast<std::size_t>(it - times_.begin()) - 1];
}

std::vector<double> StepFunction::resample(double t0, double t1,
                                           std::size_t n) const {
  SJS_CHECK(n >= 2);
  SJS_CHECK(t1 >= t0);
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t =
        t0 + (t1 - t0) * static_cast<double>(i) / static_cast<double>(n - 1);
    out.push_back(value_at(t));
  }
  return out;
}

double StepFunction::integrate(double t0, double t1) const {
  SJS_CHECK(t1 >= t0);
  if (t0 == t1) return 0.0;
  double total = 0.0;
  double cursor = t0;
  // Advance segment by segment across breakpoints inside (t0, t1).
  auto it = std::upper_bound(times_.begin(), times_.end(), t0);
  while (cursor < t1) {
    const double seg_end =
        (it == times_.end()) ? t1 : std::min(t1, *it);
    total += value_at(cursor) * (seg_end - cursor);
    cursor = seg_end;
    if (it != times_.end() && seg_end == *it) ++it;
  }
  return total;
}

std::vector<double> mean_resampled(const std::vector<StepFunction>& series,
                                   double t0, double t1, std::size_t n) {
  SJS_CHECK(!series.empty());
  std::vector<double> acc(n, 0.0);
  for (const auto& s : series) {
    auto y = s.resample(t0, t1, n);
    for (std::size_t i = 0; i < n; ++i) acc[i] += y[i];
  }
  for (auto& v : acc) v /= static_cast<double>(series.size());
  return acc;
}

}  // namespace sjs
