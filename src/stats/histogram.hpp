// Fixed-bin histogram with under/overflow buckets, used by benches to report
// distributions (e.g. per-run captured-value fractions) beyond the mean.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sjs {

class Histogram {
 public:
  /// Bins [lo, hi) divided uniformly into `bins` buckets; samples outside the
  /// range are counted in dedicated underflow/overflow buckets.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  /// Adds another histogram's counts bin-wise. Requires identical binning
  /// (same lo/hi/bins) — used to merge per-thread metric shards.
  void merge(const Histogram& other);

  std::size_t bins() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

  /// Renders a horizontal bar chart, one line per bin.
  std::string render(int max_width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace sjs
