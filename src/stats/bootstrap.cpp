#include "stats/bootstrap.hpp"

#include <algorithm>

#include "stats/summary.hpp"
#include "util/logging.hpp"

namespace sjs {

BootstrapInterval bootstrap_ci(
    const std::vector<double>& sample,
    const std::function<double(const std::vector<double>&)>& statistic,
    std::size_t resamples, double confidence, std::uint64_t seed) {
  SJS_CHECK_MSG(!sample.empty(), "bootstrap of an empty sample");
  SJS_CHECK(confidence > 0.0 && confidence < 1.0);
  SJS_CHECK(resamples >= 2);

  BootstrapInterval interval;
  interval.point = statistic(sample);

  Rng rng(seed);
  std::vector<double> stats;
  stats.reserve(resamples);
  std::vector<double> resample(sample.size());
  for (std::size_t r = 0; r < resamples; ++r) {
    for (auto& x : resample) {
      x = sample[rng.below(sample.size())];
    }
    stats.push_back(statistic(resample));
  }
  std::sort(stats.begin(), stats.end());
  const double alpha = (1.0 - confidence) / 2.0;
  interval.lo = quantile_sorted(stats, alpha);
  interval.hi = quantile_sorted(stats, 1.0 - alpha);
  return interval;
}

BootstrapInterval paired_bootstrap_ci(
    const std::vector<double>& a, const std::vector<double>& b,
    const std::function<double(const std::vector<double>&,
                               const std::vector<double>&)>& statistic,
    std::size_t resamples, double confidence, std::uint64_t seed) {
  SJS_CHECK_MSG(a.size() == b.size() && !a.empty(),
                "paired bootstrap needs equal non-empty samples");
  SJS_CHECK(confidence > 0.0 && confidence < 1.0);
  SJS_CHECK(resamples >= 2);

  BootstrapInterval interval;
  interval.point = statistic(a, b);

  Rng rng(seed);
  std::vector<double> stats;
  stats.reserve(resamples);
  std::vector<double> ra(a.size()), rb(b.size());
  for (std::size_t r = 0; r < resamples; ++r) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      const auto pick = rng.below(a.size());
      ra[i] = a[pick];
      rb[i] = b[pick];
    }
    stats.push_back(statistic(ra, rb));
  }
  std::sort(stats.begin(), stats.end());
  const double alpha = (1.0 - confidence) / 2.0;
  interval.lo = quantile_sorted(stats, alpha);
  interval.hi = quantile_sorted(stats, 1.0 - alpha);
  return interval;
}

}  // namespace sjs
