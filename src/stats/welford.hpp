// Numerically stable streaming mean/variance (Welford's algorithm) with
// parallel merge support (Chan et al.) so per-thread accumulators from
// Monte-Carlo shards can be combined exactly.
#pragma once

#include <cstdint>

namespace sjs {

class Welford {
 public:
  void add(double x);

  /// Merges another accumulator into this one (Chan's pairwise update).
  void merge(const Welford& other);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (divide by n).
  double variance_population() const;
  /// Sample variance (divide by n-1); 0 when fewer than two samples.
  double variance_sample() const;
  double stddev_sample() const;
  /// Standard error of the mean.
  double sem() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace sjs
