// Batch summary statistics: quantiles and normal-approximation confidence
// intervals for Monte-Carlo aggregates (the Table-I columns are means over
// hundreds of runs, so the CLT interval is appropriate).
#pragma once

#include <vector>

namespace sjs {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;     // sample standard deviation
  double sem = 0.0;        // standard error of the mean
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p05 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;        // tail latency percentile (serving reports)
  double ci95_lo = 0.0;    // mean ± 1.96·sem
  double ci95_hi = 0.0;
};

/// Computes all Summary fields from a sample vector (copied for sorting).
Summary summarize(std::vector<double> samples);

/// Linear-interpolation quantile of a *sorted* vector, q in [0, 1].
double quantile_sorted(const std::vector<double>& sorted, double q);

}  // namespace sjs
