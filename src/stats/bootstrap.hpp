// Bootstrap confidence intervals.
//
// Table-I cells are means of a few hundred per-run fractions, where the
// normal-approximation CI is fine; but derived quantities — the *relative
// gain* of V-Dover over the best Dover, ratios of means — have no clean
// closed-form interval. The percentile bootstrap handles them uniformly:
// resample runs with replacement, recompute the statistic, take quantiles.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/rng.hpp"

namespace sjs {

struct BootstrapInterval {
  double point = 0.0;  ///< statistic on the original sample
  double lo = 0.0;
  double hi = 0.0;
};

/// Percentile bootstrap for a statistic of one sample.
BootstrapInterval bootstrap_ci(
    const std::vector<double>& sample,
    const std::function<double(const std::vector<double>&)>& statistic,
    std::size_t resamples = 2000, double confidence = 0.95,
    std::uint64_t seed = 1);

/// Percentile bootstrap for a statistic of two *paired* samples (common
/// random numbers pair run i of A with run i of B, so rows are resampled
/// jointly). Used for the V-Dover-vs-Dover gain.
BootstrapInterval paired_bootstrap_ci(
    const std::vector<double>& a, const std::vector<double>& b,
    const std::function<double(const std::vector<double>&,
                               const std::vector<double>&)>& statistic,
    std::size_t resamples = 2000, double confidence = 0.95,
    std::uint64_t seed = 1);

}  // namespace sjs
