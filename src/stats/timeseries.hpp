// Right-continuous step functions over time.
//
// Cumulative-value-vs-time traces (paper Fig. 1) and capacity sample paths are
// both step functions; this class supports evaluation, resampling onto a
// uniform grid (for plotting/averaging across Monte-Carlo runs), and linear
// combination of series defined on different breakpoints.
#pragma once

#include <cstddef>
#include <vector>

namespace sjs {

class StepFunction {
 public:
  StepFunction() = default;

  /// Builds from breakpoints: value(t) = values[i] for t in
  /// [times[i], times[i+1]), and values.back() for t >= times.back().
  /// Before times.front() the function evaluates to `before` (default 0).
  StepFunction(std::vector<double> times, std::vector<double> values,
               double before = 0.0);

  /// Appends a step at time t (must be >= the last breakpoint).
  void append(double t, double value);

  /// Empties the series, keeping breakpoint storage (engine-reuse path).
  void clear() {
    times_.clear();
    values_.clear();
    before_ = 0.0;
  }

  /// Pre-sizes breakpoint storage for `n` appends.
  void reserve(std::size_t n) {
    times_.reserve(n);
    values_.reserve(n);
  }

  double value_at(double t) const;
  double before() const { return before_; }
  std::size_t size() const { return times_.size(); }
  bool empty() const { return times_.empty(); }
  const std::vector<double>& times() const { return times_; }
  const std::vector<double>& values() const { return values_; }

  /// Samples the function at `n` uniformly spaced points on [t0, t1]
  /// (inclusive endpoints). Returns the y-values; x grid is implied.
  std::vector<double> resample(double t0, double t1, std::size_t n) const;

  /// ∫ over [t0, t1] of the step function (exact).
  double integrate(double t0, double t1) const;

 private:
  std::vector<double> times_;
  std::vector<double> values_;
  double before_ = 0.0;
};

/// Pointwise mean of several step functions, sampled on a uniform n-point grid
/// over [t0, t1]. Used to average value-vs-time traces across runs.
std::vector<double> mean_resampled(const std::vector<StepFunction>& series,
                                   double t0, double t1, std::size_t n);

}  // namespace sjs
