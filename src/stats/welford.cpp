#include "stats/welford.hpp"

#include <algorithm>
#include <cmath>

namespace sjs {

void Welford::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Welford::merge(const Welford& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Welford::variance_population() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double Welford::variance_sample() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Welford::stddev_sample() const { return std::sqrt(variance_sample()); }

double Welford::sem() const {
  return n_ > 1 ? stddev_sample() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

}  // namespace sjs
