#include "jobs/instance.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/logging.hpp"

namespace sjs {

Instance::Instance(std::vector<Job> jobs, cap::CapacityProfile capacity,
                   double c_lo, double c_hi)
    : jobs_(std::move(jobs)),
      capacity_(std::move(capacity)),
      c_lo_(c_lo),
      c_hi_(c_hi) {
  // Canonical form: jobs sorted by (release, original order), ids reassigned
  // to positions so the engine can index arrays by JobId.
  std::stable_sort(jobs_.begin(), jobs_.end(),
                   [](const Job& a, const Job& b) {
                     return a.release < b.release;
                   });
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    jobs_[i].id = static_cast<JobId>(i);
  }
  validate();
}

Instance::Instance(std::vector<Job> jobs, cap::CapacityProfile capacity)
    : Instance(std::move(jobs), capacity, capacity.min_rate(),
               capacity.max_rate()) {}

void Instance::validate() const {
  SJS_CHECK_MSG(c_lo_ > 0.0, "band lower bound must be positive");
  SJS_CHECK_MSG(c_hi_ >= c_lo_, "band upper bound below lower bound");
  SJS_CHECK_MSG(capacity_.min_rate() >= c_lo_ - 1e-12,
                "capacity path dips below the declared band: "
                    << capacity_.min_rate() << " < " << c_lo_);
  SJS_CHECK_MSG(capacity_.max_rate() <= c_hi_ + 1e-12,
                "capacity path exceeds the declared band: "
                    << capacity_.max_rate() << " > " << c_hi_);
  for (const Job& j : jobs_) {
    SJS_CHECK_MSG(j.valid(), "invalid job: " << j.to_string());
  }
}

double Instance::importance_ratio() const {
  if (jobs_.empty()) return 1.0;
  double lo = jobs_[0].value_density();
  double hi = lo;
  for (const Job& j : jobs_) {
    lo = std::min(lo, j.value_density());
    hi = std::max(hi, j.value_density());
  }
  return hi / lo;
}

double Instance::total_value() const {
  double v = 0.0;
  for (const Job& j : jobs_) v += j.value;
  return v;
}

double Instance::total_workload() const {
  double p = 0.0;
  for (const Job& j : jobs_) p += j.workload;
  return p;
}

double Instance::max_deadline() const {
  double d = 0.0;
  for (const Job& j : jobs_) d = std::max(d, j.deadline);
  return d;
}

bool Instance::all_individually_admissible() const {
  return inadmissible_jobs().empty();
}

std::vector<JobId> Instance::inadmissible_jobs() const {
  std::vector<JobId> out;
  for (const Job& j : jobs_) {
    if (!j.individually_admissible(c_lo_)) out.push_back(j.id);
  }
  return out;
}

Instance Instance::drop_inadmissible() const {
  std::vector<Job> kept;
  kept.reserve(jobs_.size());
  for (const Job& j : jobs_) {
    if (j.individually_admissible(c_lo_)) kept.push_back(j);
  }
  return Instance(std::move(kept), capacity_, c_lo_, c_hi_);
}

Instance Instance::normalized() const {
  if (jobs_.empty()) return *this;
  double min_density = jobs_[0].value_density();
  for (const Job& j : jobs_) {
    min_density = std::min(min_density, j.value_density());
  }
  std::vector<Job> scaled = jobs_;
  if (min_density > 0.0) {
    for (Job& j : scaled) j.value /= min_density;
  }
  return Instance(std::move(scaled), capacity_, c_lo_, c_hi_);
}

JobId Instance::append_job(Job job) {
  SJS_CHECK_MSG(jobs_.empty() || job.release >= jobs_.back().release,
                "live append must be release-monotone: "
                    << job.release << " < " << jobs_.back().release);
  job.id = static_cast<JobId>(jobs_.size());
  SJS_CHECK_MSG(job.valid(), "invalid job: " << job.to_string());
  jobs_.push_back(job);
  return job.id;
}

void Instance::save_jobs(const std::string& path) const {
  CsvWriter writer(path);
  writer.write_row({"id", "release", "workload", "deadline", "value"});
  for (const Job& j : jobs_) {
    writer.write_row_numeric({static_cast<double>(j.id), j.release,
                              j.workload, j.deadline, j.value});
  }
}

std::vector<Job> Instance::load_jobs(const std::string& path) {
  auto rows = read_csv(path);
  std::vector<Job> jobs;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    if (i == 0 && !row.empty() && row[0] == "id") continue;
    if (row.size() != 5) {
      throw std::runtime_error("job row " + std::to_string(i) +
                               " must have 5 fields");
    }
    Job j;
    try {
      j.id = static_cast<JobId>(std::stol(row[0]));
      j.release = std::stod(row[1]);
      j.workload = std::stod(row[2]);
      j.deadline = std::stod(row[3]);
      j.value = std::stod(row[4]);
    } catch (const std::exception&) {
      throw std::runtime_error("job row " + std::to_string(i) +
                               " is not numeric");
    }
    if (!j.valid()) {
      throw std::runtime_error("job row " + std::to_string(i) +
                               " fails validity checks");
    }
    jobs.push_back(j);
  }
  return jobs;
}

}  // namespace sjs
