#include "jobs/workload_gen.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace sjs::gen {

namespace {

double draw_workload(WorkloadDist dist, double mean, Rng& rng) {
  switch (dist) {
    case WorkloadDist::kExponential:
      return rng.exponential_mean(mean);
    case WorkloadDist::kDeterministic:
      return mean;
    case WorkloadDist::kBoundedPareto:
      return rng.bounded_pareto(1.5, mean / 10.0, mean * 20.0);
    case WorkloadDist::kUniform:
      return rng.uniform(mean / 2.0, 1.5 * mean);
  }
  SJS_CHECK_MSG(false, "unknown workload distribution");
  return mean;
}

}  // namespace

std::vector<Job> generate_jobs(const JobGenParams& params, Rng& rng) {
  SJS_CHECK(params.lambda > 0.0);
  SJS_CHECK(params.horizon > 0.0);
  SJS_CHECK(params.workload_mean > 0.0);
  SJS_CHECK(params.density_lo > 0.0 && params.density_hi >= params.density_lo);
  SJS_CHECK(params.slack_factor > 0.0);
  SJS_CHECK(params.c_lo > 0.0);

  std::vector<Job> jobs;
  double t = rng.exponential_rate(params.lambda);
  while (t < params.horizon) {
    Job j;
    j.release = t;
    j.workload = draw_workload(params.workload_dist, params.workload_mean, rng);
    const double density = rng.uniform(params.density_lo, params.density_hi);
    j.value = density * j.workload;
    j.deadline =
        t + params.slack_factor * j.workload / params.c_lo;
    jobs.push_back(j);
    t += rng.exponential_rate(params.lambda);
  }
  return jobs;
}

std::vector<Job> generate_mmpp_jobs(const JobGenParams& shape,
                                    const MmppParams& mmpp, Rng& rng) {
  SJS_CHECK(mmpp.lambda_low > 0.0 && mmpp.lambda_high > 0.0);
  SJS_CHECK(mmpp.mean_sojourn_low > 0.0 && mmpp.mean_sojourn_high > 0.0);
  SJS_CHECK(shape.horizon > 0.0);

  std::vector<Job> jobs;
  bool high = rng.bernoulli(mmpp.p_start_high);
  double t = 0.0;
  double phase_end =
      rng.exponential_mean(high ? mmpp.mean_sojourn_high
                                : mmpp.mean_sojourn_low);
  while (t < shape.horizon) {
    const double rate = high ? mmpp.lambda_high : mmpp.lambda_low;
    const double gap = rng.exponential_rate(rate);
    if (t + gap >= phase_end) {
      // Phase switch before the next arrival: by the exponential's
      // memorylessness we may simply restart the inter-arrival clock in the
      // new phase.
      t = phase_end;
      high = !high;
      phase_end = t + rng.exponential_mean(high ? mmpp.mean_sojourn_high
                                                : mmpp.mean_sojourn_low);
      continue;
    }
    t += gap;
    if (t >= shape.horizon) break;
    Job j;
    j.release = t;
    j.workload = draw_workload(shape.workload_dist, shape.workload_mean, rng);
    j.value = rng.uniform(shape.density_lo, shape.density_hi) * j.workload;
    j.deadline = t + shape.slack_factor * j.workload / shape.c_lo;
    jobs.push_back(j);
  }
  return jobs;
}

Instance generate_paper_instance(const PaperSetup& setup, Rng& rng) {
  SJS_CHECK(setup.k >= 1.0);
  JobGenParams jp;
  jp.lambda = setup.lambda;
  jp.horizon = setup.horizon();
  jp.workload_mean = setup.mu;
  jp.workload_dist = WorkloadDist::kExponential;
  jp.density_lo = 1.0;
  jp.density_hi = setup.k;
  jp.slack_factor = setup.slack_factor;
  jp.c_lo = setup.c_lo;
  auto jobs = generate_jobs(jp, rng);

  // Capacity must cover the latest deadline (deadlines overhang the release
  // horizon by up to p/c_lo), so extend the sampled path accordingly.
  double cover = jp.horizon;
  for (const Job& j : jobs) cover = std::max(cover, j.deadline);

  cap::TwoStateMarkovParams cp;
  cp.c_lo = setup.c_lo;
  cp.c_hi = setup.c_hi;
  cp.mean_sojourn_lo = setup.horizon() * setup.sojourn_fraction;
  cp.mean_sojourn_hi = setup.horizon() * setup.sojourn_fraction;
  auto profile = cap::sample_two_state_markov(cp, cover, rng);

  // Declare the *band* explicitly: a short sample path may never visit one of
  // the states, but the algorithms must still be parameterised by the band.
  return Instance(std::move(jobs), std::move(profile), setup.c_lo, setup.c_hi);
}

std::vector<Job> generate_underloaded_jobs(const cap::CapacityProfile& profile,
                                           double horizon, std::size_t count,
                                           double utilization, Rng& rng) {
  SJS_CHECK(horizon > 0.0);
  SJS_CHECK(count > 0);
  SJS_CHECK(utilization > 0.0 && utilization <= 1.0);

  // Slice [0, horizon) into `count` disjoint windows; inside window i create
  // a job whose workload is `utilization` of the work the actual capacity
  // path can deliver there. Executing each job inside its own window is a
  // feasible schedule, so the instance is underloaded by construction.
  std::vector<Job> jobs;
  const double slot = horizon / static_cast<double>(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double w_start = static_cast<double>(i) * slot;
    const double w_end = w_start + slot;
    // Jitter the release inside the first half of the window.
    const double release = w_start + rng.uniform01() * slot * 0.25;
    const double deadline = w_end;
    const double available = profile.work(release, deadline);
    Job j;
    j.release = release;
    j.deadline = deadline;
    j.workload = std::max(1e-9, available * utilization);
    j.value = j.workload * rng.uniform(1.0, 7.0);
    jobs.push_back(j);
  }
  return jobs;
}

std::vector<Job> generate_small_random_jobs(std::size_t count, double horizon,
                                            double k, double c_lo,
                                            double slack_max, Rng& rng) {
  SJS_CHECK(count > 0);
  SJS_CHECK(horizon > 0.0);
  SJS_CHECK(k >= 1.0);
  SJS_CHECK(c_lo > 0.0);
  SJS_CHECK(slack_max >= 1.0);
  std::vector<Job> jobs;
  for (std::size_t i = 0; i < count; ++i) {
    Job j;
    j.release = rng.uniform(0.0, horizon);
    j.workload = rng.exponential_mean(1.0);
    j.value = j.workload * rng.uniform(1.0, k);
    const double min_window = j.workload / c_lo;
    j.deadline = j.release + rng.uniform(min_window, slack_max * min_window);
    jobs.push_back(j);
  }
  return jobs;
}

}  // namespace sjs::gen
