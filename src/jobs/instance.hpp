// Instance — the paper's "input instance I": a job collection plus the
// capacity sample path and the admissible band [c_lo, c_hi].
//
// The band is carried separately from the sample path because online
// algorithms are parameterised by the *band* (V-Dover's conservative estimate
// is c_lo), while the sample path is what the engine executes; the path must
// lie inside the band.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "capacity/capacity_profile.hpp"
#include "jobs/job.hpp"

namespace sjs {

class Instance {
 public:
  Instance(std::vector<Job> jobs, cap::CapacityProfile capacity, double c_lo,
           double c_hi);

  /// Convenience: band taken from the profile's own min/max rates.
  Instance(std::vector<Job> jobs, cap::CapacityProfile capacity);

  const std::vector<Job>& jobs() const { return jobs_; }
  const cap::CapacityProfile& capacity() const { return capacity_; }
  double c_lo() const { return c_lo_; }
  double c_hi() const { return c_hi_; }
  /// δ = c_hi / c_lo.
  double delta() const { return c_hi_ / c_lo_; }
  std::size_t size() const { return jobs_.size(); }

  const Job& job(JobId id) const { return jobs_.at(static_cast<std::size_t>(id)); }

  /// Importance ratio k_I (Definition 3): max value density / min density.
  /// Returns 1 for empty instances.
  double importance_ratio() const;

  /// Σ v_i — the normaliser the paper uses for Table I / Fig. 1.
  double total_value() const;

  /// Σ p_i.
  double total_workload() const;

  /// max_i d_i (0 for empty instances) — the natural simulation end time.
  double max_deadline() const;

  /// True iff every job satisfies Definition 4 w.r.t. c_lo.
  bool all_individually_admissible() const;

  /// Ids of jobs violating Definition 4.
  std::vector<JobId> inadmissible_jobs() const;

  /// Returns a copy with inadmissible jobs removed (the paper notes they can
  /// be deleted without affecting the constant-capacity competitive ratio).
  Instance drop_inadmissible() const;

  /// Returns a copy with every value scaled by 1/min(value density) so the
  /// smallest density becomes exactly 1 — the paper's normalisation
  /// convention (Definition 3), which Lemma 1 assumes. No-op for empty
  /// instances; scaling is value-order preserving, so schedules and ratios
  /// are unchanged up to the common factor.
  Instance normalized() const;

  /// Appends one job to a *live* instance (real-time admission, src/serve/).
  /// Releases must be non-decreasing so the canonical sorted-by-release form
  /// is preserved without re-sorting; the job's id is assigned to its
  /// position and returned. An engine bound to this instance may be mid-run
  /// in live mode — append only between engine callbacks (the engine holds
  /// no references into the job vector across calls).
  JobId append_job(Job job);

  /// Pre-sizes the job vector (live boot: --max-in-flight admissions fit
  /// without reallocation, part of the serve plane's zero-alloc steady
  /// state).
  void reserve_jobs(std::size_t n) { jobs_.reserve(n); }

  /// Serializes jobs to CSV ("id,release,workload,deadline,value").
  void save_jobs(const std::string& path) const;

  /// Loads a job list saved by save_jobs. Throws on malformed input.
  static std::vector<Job> load_jobs(const std::string& path);

 private:
  void validate() const;

  std::vector<Job> jobs_;  // sorted by release time, ids = positions
  cap::CapacityProfile capacity_;
  double c_lo_;
  double c_hi_;
};

}  // namespace sjs
