#include "jobs/bundle.hpp"

#include <filesystem>
#include <stdexcept>

#include "capacity/trace_io.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"

namespace sjs {

namespace fs = std::filesystem;

void save_instance_bundle(const Instance& instance, const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    throw std::runtime_error("cannot create bundle directory " + dir + ": " +
                             ec.message());
  }
  instance.save_jobs((fs::path(dir) / "jobs.csv").string());
  cap::save_trace(instance.capacity(),
                  (fs::path(dir) / "capacity.csv").string());
  CsvWriter band((fs::path(dir) / "band.csv").string());
  band.write_row({"c_lo", "c_hi"});
  band.write_row_numeric({instance.c_lo(), instance.c_hi()});
}

Instance load_instance_bundle(const std::string& dir) {
  const auto jobs_path = (fs::path(dir) / "jobs.csv").string();
  const auto capacity_path = (fs::path(dir) / "capacity.csv").string();
  const auto band_path = (fs::path(dir) / "band.csv").string();

  auto jobs = Instance::load_jobs(jobs_path);
  auto capacity = cap::load_trace(capacity_path);

  auto band_rows = read_csv(band_path);
  // Header row plus one data row.
  if (band_rows.size() != 2 || band_rows[1].size() != 2) {
    throw std::runtime_error("malformed band.csv in " + dir);
  }
  double c_lo = 0.0, c_hi = 0.0;
  try {
    c_lo = std::stod(band_rows[1][0]);
    c_hi = std::stod(band_rows[1][1]);
  } catch (const std::exception&) {
    throw std::runtime_error("non-numeric band in " + dir);
  }
  try {
    return Instance(std::move(jobs), std::move(capacity), c_lo, c_hi);
  } catch (const CheckError& e) {
    throw std::runtime_error(std::string("inconsistent bundle: ") + e.what());
  }
}

}  // namespace sjs
