#include "jobs/job.hpp"

#include <cmath>
#include <sstream>
#include "util/fp.hpp"

namespace sjs {

bool Job::valid() const {
  return std::isfinite(release) && std::isfinite(workload) &&
         std::isfinite(deadline) && std::isfinite(value) && release >= 0.0 &&
         workload > 0.0 && deadline > release && value >= 0.0;
}

std::string Job::to_string() const {
  std::ostringstream os;
  os << "Job{id=" << id << ", r=" << release << ", p=" << workload
     << ", d=" << deadline << ", v=" << value << "}";
  return os.str();
}

bool operator==(const Job& a, const Job& b) {
  return a.id == b.id && fp::exact_eq(a.release, b.release) &&
         fp::exact_eq(a.workload, b.workload) &&
         fp::exact_eq(a.deadline, b.deadline) && fp::exact_eq(a.value, b.value);
}

}  // namespace sjs
