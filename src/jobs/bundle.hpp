// Instance bundle persistence: a complete experiment input (job list,
// capacity sample path, declared band) saved as a directory of CSVs, so an
// instance that triggered interesting behaviour — a worst-case search hit, a
// production trace replay — can be archived and replayed bit-exactly.
//
//   <dir>/jobs.csv      id,release,workload,deadline,value
//   <dir>/capacity.csv  time,rate
//   <dir>/band.csv      c_lo,c_hi
#pragma once

#include <string>

#include "jobs/instance.hpp"

namespace sjs {

/// Writes the instance into `dir` (created if missing). Throws
/// std::runtime_error on I/O failure.
void save_instance_bundle(const Instance& instance, const std::string& dir);

/// Loads a bundle saved by save_instance_bundle. Throws std::runtime_error
/// on missing/malformed files (including a band that does not contain the
/// capacity path).
Instance load_instance_bundle(const std::string& dir);

}  // namespace sjs
