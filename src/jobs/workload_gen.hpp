// Workload generators, including the paper's exact Sec. IV setup.
//
// Paper setup: Poisson(λ) releases, Exp(μ=1) workloads, value density
// ~ U[1, k] with k = 7 (v = density × p), relative deadline = p / c_lo so
// every job has *zero conservative laxity* at release (and is exactly at the
// boundary of individual admissibility). Horizon H = 2000/λ, i.e. 2000
// expected jobs. Capacity: two-state CTMC {1, 35}, mean sojourn H/4.
#pragma once

#include <functional>
#include <vector>

#include "capacity/capacity_process.hpp"
#include "jobs/instance.hpp"
#include "util/rng.hpp"

namespace sjs::gen {

/// Distribution selector for workloads.
enum class WorkloadDist {
  kExponential,    ///< Exp(mean) — the paper's choice
  kDeterministic,  ///< constant = mean
  kBoundedPareto,  ///< heavy-tailed, shape 1.5, [mean/10, mean*20]
  kUniform,        ///< U[mean/2, 3·mean/2]
};

struct JobGenParams {
  double lambda = 6.0;        ///< Poisson arrival rate
  double horizon = 2000.0 / 6.0;  ///< job releases occur in [0, horizon)
  double workload_mean = 1.0;
  WorkloadDist workload_dist = WorkloadDist::kExponential;
  double density_lo = 1.0;    ///< value density ~ U[density_lo, density_hi]
  double density_hi = 7.0;    ///< so importance ratio k = hi/lo
  /// Relative deadline = slack_factor × p / c_lo. 1.0 reproduces the paper's
  /// zero-conservative-laxity setup; > 1 gives slack; < 1 makes jobs
  /// individually inadmissible.
  double slack_factor = 1.0;
  double c_lo = 1.0;          ///< used to size relative deadlines
};

/// Generates the job list only (no capacity).
std::vector<Job> generate_jobs(const JobGenParams& params, Rng& rng);

/// Markov-modulated Poisson arrivals: the arrival rate alternates between
/// `lambda_low` and `lambda_high` with exponential sojourns — the bursty
/// traffic real spot markets see. Job shapes (workload, density, deadline)
/// come from `shape`; its `lambda` field is ignored.
struct MmppParams {
  double lambda_low = 2.0;
  double lambda_high = 12.0;
  double mean_sojourn_low = 10.0;
  double mean_sojourn_high = 10.0;
  double p_start_high = 0.5;
};

std::vector<Job> generate_mmpp_jobs(const JobGenParams& shape,
                                    const MmppParams& mmpp, Rng& rng);

/// Full Sec. IV experiment parameters: jobs + two-state CTMC capacity.
struct PaperSetup {
  double lambda = 6.0;
  double mu = 1.0;          ///< workload mean
  double k = 7.0;           ///< importance ratio bound (density ~ U[1, k])
  double c_lo = 1.0;
  double c_hi = 35.0;
  double expected_jobs = 2000.0;  ///< horizon H = expected_jobs / lambda
  double sojourn_fraction = 0.25; ///< mean sojourn = H * sojourn_fraction
  double slack_factor = 1.0;

  double horizon() const { return expected_jobs / lambda; }
};

/// Draws one complete instance of the paper's simulation (jobs + capacity
/// path). Capacity is sampled to cover the maximum deadline, not just the
/// release horizon.
Instance generate_paper_instance(const PaperSetup& setup, Rng& rng);

/// Generates an *underloaded* instance on the given capacity profile: jobs
/// are carved out of disjoint execution windows of the actual path, so the
/// whole set is schedulable (EDF must then capture 100%; Theorem 2).
/// `utilization` in (0, 1] controls how much of each window becomes workload.
std::vector<Job> generate_underloaded_jobs(const cap::CapacityProfile& profile,
                                           double horizon, std::size_t count,
                                           double utilization, Rng& rng);

/// Small random instances for exact-offline comparisons: `count` jobs with
/// uniform releases on [0, horizon), Exp(1) workloads, density U[1, k],
/// relative deadlines uniform in [p/c_lo, slack_max · p/c_lo].
std::vector<Job> generate_small_random_jobs(std::size_t count, double horizon,
                                            double k, double c_lo,
                                            double slack_max, Rng& rng);

}  // namespace sjs::gen
