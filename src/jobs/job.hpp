// Job model (paper Sec. II-A): each secondary job T_i carries a release time
// r_i, a workload p_i (capacity-seconds), a firm deadline d_i, and a value v_i
// collected only when the job completes by d_i.
#pragma once

#include <cstdint>
#include <string>

namespace sjs {

using JobId = std::int32_t;
inline constexpr JobId kNoJob = -1;

struct Job {
  JobId id = kNoJob;
  double release = 0.0;   ///< r_i
  double workload = 0.0;  ///< p_i, in units of capacity × time
  double deadline = 0.0;  ///< d_i (absolute, firm)
  double value = 0.0;     ///< v_i

  /// v_i / p_i, the paper's value density (Definition 3).
  double value_density() const { return value / workload; }

  /// Relative deadline d_i - r_i.
  double window() const { return deadline - release; }

  /// Individual admissibility (Definition 4): the job can always complete on
  /// its own regardless of capacity variation, i.e. d - r >= p / c_lo.
  /// A relative tolerance absorbs round-off: the paper's own simulation sets
  /// d = r + p/c_lo exactly, which floating point reproduces only to an ulp.
  bool individually_admissible(double c_lo) const {
    const double needed = workload / c_lo;
    return window() >= needed * (1.0 - 1e-12) - 1e-12;
  }

  /// Laxity under a constant capacity estimate c_est with remaining workload
  /// p_rem at time t (Definition 5 when c_est = c_lo: conservative laxity).
  double laxity(double t, double p_rem, double c_est) const {
    return deadline - t - p_rem / c_est;
  }

  /// Basic validity: finite, positive workload, deadline after release,
  /// non-negative value.
  bool valid() const;

  std::string to_string() const;
};

bool operator==(const Job& a, const Job& b);

}  // namespace sjs
