// Job model (paper Sec. II-A): each secondary job T_i carries a release time
// r_i, a workload p_i (capacity-seconds), a firm deadline d_i, and a value v_i
// collected only when the job completes by d_i.
#pragma once

#include <cstdint>
#include <string>

namespace sjs {

// A JobId is a 64-bit handle: the low 32 bits name a slot in the engine's
// job slab (sim::JobTable), the high 32 bits carry a generation stamp so a
// reused slot invalidates stale handles (the same idiom as the timer slab's
// TimerId). On the replay and live-admission paths the generation is always
// zero and ids are dense slot indices — numerically identical to the old
// 32-bit ids, which keeps every tie-break, trace payload, and digest fold
// byte-stable across the widening.
using JobId = std::int64_t;
inline constexpr JobId kNoJob = -1;

/// Slot index (low 32 bits) of a job handle.
constexpr std::uint32_t job_slot(JobId id) {
  return static_cast<std::uint32_t>(static_cast<std::uint64_t>(id));
}

/// Generation stamp (high 32 bits) of a job handle.
constexpr std::uint32_t job_generation(JobId id) {
  return static_cast<std::uint32_t>(static_cast<std::uint64_t>(id) >> 32);
}

/// Assembles a handle from slot + generation (generation 0 = dense id).
constexpr JobId make_job_id(std::uint32_t slot, std::uint32_t generation) {
  return static_cast<JobId>((static_cast<std::uint64_t>(generation) << 32) |
                            slot);
}

struct Job {
  JobId id = kNoJob;
  double release = 0.0;   ///< r_i
  double workload = 0.0;  ///< p_i, in units of capacity × time
  double deadline = 0.0;  ///< d_i (absolute, firm)
  double value = 0.0;     ///< v_i

  /// v_i / p_i, the paper's value density (Definition 3).
  double value_density() const { return value / workload; }

  /// Relative deadline d_i - r_i.
  double window() const { return deadline - release; }

  /// Individual admissibility (Definition 4): the job can always complete on
  /// its own regardless of capacity variation, i.e. d - r >= p / c_lo.
  /// A relative tolerance absorbs round-off: the paper's own simulation sets
  /// d = r + p/c_lo exactly, which floating point reproduces only to an ulp.
  bool individually_admissible(double c_lo) const {
    const double needed = workload / c_lo;
    return window() >= needed * (1.0 - 1e-12) - 1e-12;
  }

  /// Laxity under a constant capacity estimate c_est with remaining workload
  /// p_rem at time t (Definition 5 when c_est = c_lo: conservative laxity).
  double laxity(double t, double p_rem, double c_est) const {
    return deadline - t - p_rem / c_est;
  }

  /// Basic validity: finite, positive workload, deadline after release,
  /// non-negative value.
  bool valid() const;

  std::string to_string() const;
};

bool operator==(const Job& a, const Job& b);

}  // namespace sjs
