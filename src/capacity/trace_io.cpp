#include "capacity/trace_io.hpp"

#include <stdexcept>

#include "util/csv.hpp"
#include "util/logging.hpp"

namespace sjs::cap {

void save_trace(const CapacityProfile& profile, const std::string& path) {
  CsvWriter writer(path);
  writer.write_row({"time", "rate"});
  const auto& times = profile.breakpoints();
  const auto& rates = profile.rates();
  for (std::size_t i = 0; i < times.size(); ++i) {
    writer.write_row_numeric({times[i], rates[i]});
  }
}

CapacityProfile load_trace(const std::string& path) {
  auto rows = read_csv(path);
  std::vector<double> times;
  std::vector<double> rates;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    if (row.size() != 2) {
      throw std::runtime_error("trace row " + std::to_string(i) +
                               " must have 2 fields");
    }
    if (i == 0 && row[0] == "time") continue;  // optional header
    try {
      times.push_back(std::stod(row[0]));
      rates.push_back(std::stod(row[1]));
    } catch (const std::exception&) {
      throw std::runtime_error("trace row " + std::to_string(i) +
                               " is not numeric");
    }
  }
  if (times.empty()) throw std::runtime_error("empty capacity trace: " + path);
  try {
    return CapacityProfile(std::move(times), std::move(rates));
  } catch (const CheckError& e) {
    throw std::runtime_error(std::string("invalid capacity trace: ") +
                             e.what());
  }
}

}  // namespace sjs::cap
