// CapacityProfile — the time-varying processor capacity c(t) of the paper.
//
// The paper models capacity as any integrable function bounded inside
// [c_lo, c_hi] (its class C(c_lo, c_hi), Sec. II-A). We represent sample paths
// as right-continuous piecewise-constant functions; every stochastic process
// we simulate (CTMC, random walk) produces such paths exactly, and smooth
// profiles (sinusoids) are represented by fine sampling. Piecewise-constant
// paths make the three operations the simulator needs *exact*:
//
//   rate(t)          — instantaneous capacity,
//   work(t1, t2)     — ∫ c(τ)dτ, the workload completable on [t1, t2],
//   invert(t, w)     — the earliest t' with work(t, t') = w, i.e. the exact
//                      completion instant of a job dispatched at t with
//                      remaining workload w.
//
// All queries after the last breakpoint use the final rate (the profile
// extends to +infinity), so jobs released near the simulation horizon still
// have well-defined completion times.
#pragma once

#include <limits>
#include <vector>

namespace sjs::cap {

class CapacityProfile {
 public:
  /// Constant capacity c on [0, inf).
  explicit CapacityProfile(double constant_rate);

  /// Piecewise-constant: rate(t) = rates[i] on [times[i], times[i+1]) and
  /// rates.back() on [times.back(), inf). Requires times[0] == 0, strictly
  /// increasing times, and every rate > 0 (the paper's c_lo > 0; a zero rate
  /// would make invert() undefined).
  CapacityProfile(std::vector<double> times, std::vector<double> rates);

  /// Instantaneous capacity at time t >= 0.
  double rate(double t) const;

  /// ∫_{t1}^{t2} c(τ)dτ for 0 <= t1 <= t2. Exact.
  double work(double t1, double t2) const;

  /// Cumulative work W(t) = ∫_0^t c(τ)dτ.
  double cumulative(double t) const;

  /// Earliest t' >= t with work(t, t') == w (w >= 0). Exact inverse.
  double invert(double t, double w) const;

  /// First breakpoint strictly after t, or +inf when the profile is constant
  /// from t onward. Used by the engine to raise capacity-change interrupts.
  double next_change(double t) const;

  /// Minimum/maximum rate over the whole profile (the band [c_lo, c_hi]).
  double min_rate() const { return min_rate_; }
  double max_rate() const { return max_rate_; }
  /// δ = c_hi / c_lo, the paper's capacity-variation measure.
  double delta() const { return max_rate_ / min_rate_; }

  std::size_t segments() const { return times_.size(); }
  const std::vector<double>& breakpoints() const { return times_; }
  const std::vector<double>& rates() const { return rates_; }

  /// Monotone query cursor: rate/work/invert with the same exact results as
  /// the profile's own methods (bit-identical arithmetic, asserted in
  /// tests/capacity_test.cpp) but amortized O(1) per call when successive
  /// query start times are non-decreasing — the discrete-event engine's
  /// access pattern (simulation time never rewinds). The cursor remembers the
  /// segment containing the last start time and walks forward from it; a
  /// backward jump falls back to the profile's O(log B) binary search, so
  /// out-of-order use is slower, never wrong.
  ///
  /// invert() may target a completion instant far ahead of the current
  /// segment; it gallops (doubling steps, then binary search inside the
  /// bracketed window) from the cursor position *without* advancing it, so an
  /// O(log d) lookahead — d = segments to the completion — never turns the
  /// next on-time query into a backward jump.
  ///
  /// The cursor borrows the profile (no ownership) and holds mutable state;
  /// it is single-threaded like the engine that owns it. The profile itself
  /// stays immutable and freely shareable across threads.
  class Cursor {
   public:
    Cursor() = default;
    explicit Cursor(const CapacityProfile& profile) : profile_(&profile) {}

    /// Rewinds to segment 0 (use when restarting a run at t = 0).
    void reset() { hint_ = 0; }

    double rate(double t) { return profile_->rates_[seek(t)]; }
    double cumulative(double t);
    double work(double t1, double t2);
    double invert(double t, double w);

   private:
    /// Largest i with times_[i] <= t; advances the hint (amortized O(1) for
    /// non-decreasing t, O(log B) on a backward jump).
    std::size_t seek(double t);

    const CapacityProfile* profile_ = nullptr;
    std::size_t hint_ = 0;
  };

  static constexpr double kInfinity = std::numeric_limits<double>::infinity();

 private:
  /// Index of the segment containing t (largest i with times_[i] <= t).
  std::size_t segment_index(double t) const;

  std::vector<double> times_;   // times_[0] == 0, strictly increasing
  std::vector<double> rates_;   // same length, all > 0
  std::vector<double> cum_;     // cum_[i] = ∫_0^{times_[i]} c
  double min_rate_;
  double max_rate_;
};

}  // namespace sjs::cap
