// Fleet-scale capacity scenarios — correlated sample paths for a cluster of
// servers, beyond the independent single-server processes in
// capacity_process.hpp.
//
// Three scenario families motivated by real cloud fleets:
//
//   diurnal           — a two-state CTMC whose *high-state* rate is modulated
//                       by a slow sinusoid (the day/night cycle of primary
//                       load: secondary capacity peaks off-hours).
//   flash-crowd       — every server's capacity collapses together at one
//                       shared epoch (a primary-traffic spike eats the spare
//                       capacity fleet-wide), then recovers in a staircase.
//   correlated-outage — exactly k of the K servers drop to a small positive
//                       floor at one shared epoch (a rack/AZ failure), the
//                       rest are untouched.
//
// All randomness flows through the caller's Rng, and the draw order is fixed
// (shared epoch first, then affected-server choice, then per-server base
// paths in server order), so a (seed, run) pair reproduces the exact fleet
// bit-for-bit — the same determinism seam every other generator uses.
//
// Rates never reach zero: collapse/outage floors are fractions of each
// server's own c_lo, preserving the CapacityProfile invariant (rate > 0) and
// the paper's c_lo > 0 assumption.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "capacity/capacity_process.hpp"
#include "capacity/capacity_profile.hpp"
#include "util/rng.hpp"

namespace sjs::cap {

enum class ScenarioKind {
  kSteady = 0,           ///< independent two-state CTMC per server
  kDiurnal = 1,          ///< sinusoid-modulated CTMC per server
  kFlashCrowd = 2,       ///< correlated fleet-wide collapse + recovery
  kCorrelatedOutage = 3  ///< k-of-K servers drop together
};

/// Stable scenario label ("steady", "diurnal", "flash-crowd", "outage").
const char* scenario_name(ScenarioKind kind);

/// Parses a scenario label; returns false on an unknown name.
bool parse_scenario(const std::string& text, ScenarioKind* out);

/// All scenario kinds in declaration order (for lineups and tables).
std::vector<ScenarioKind> all_scenarios();

// --- diurnal ---------------------------------------------------------------

struct DiurnalParams {
  double period = 200.0;        ///< length of one "day" in sim time
  double amp_fraction = 0.6;    ///< high-state trough depth as band fraction
  double phase = 0.0;           ///< radians
  std::size_t samples_per_period = 24;
};

/// Two-state CTMC whose high-state rate is c_lo + (c_hi-c_lo)·m(t) with
/// m(t) = 1 - amp_fraction·(0.5 - 0.5·sin(2πt/period + phase)) — the high
/// state swings between (1-amp_fraction)·band and the full band over one
/// period. Low state stays at c_lo. Breakpoints are the union of CTMC switch
/// epochs and the absolute sinusoid grid (multiples of period/samples).
CapacityProfile sample_diurnal_ctmc(const TwoStateMarkovParams& base,
                                    const DiurnalParams& params,
                                    double horizon, Rng& rng);

// --- correlated fleet events -----------------------------------------------

/// What a correlated scenario actually did — exposed for tests and tables.
struct FleetEventInfo {
  double event_time = -1.0;            ///< shared epoch (collapse/outage start)
  double event_end = -1.0;             ///< full-capacity restoration instant
  std::vector<std::size_t> affected;   ///< server indices hit (sorted)
};

struct FlashCrowdParams {
  double epoch_fraction_lo = 0.2;   ///< epoch ~ U[lo,hi]·horizon
  double epoch_fraction_hi = 0.5;
  double collapse_fraction = 0.25;  ///< rate multiplier during the collapse
  double collapse_duration = 20.0;
  double recovery_duration = 30.0;  ///< staircase back to 1.0
  std::size_t recovery_steps = 4;
};

/// Independent two-state CTMC per server (base[s] gives server s's band),
/// all multiplied by one shared collapse/recovery factor path.
std::vector<CapacityProfile> sample_flash_crowd_fleet(
    const std::vector<TwoStateMarkovParams>& base,
    const FlashCrowdParams& params, double horizon, Rng& rng,
    FleetEventInfo* info = nullptr);

struct CorrelatedOutageParams {
  std::size_t failures = 1;        ///< k servers drop together
  double epoch_fraction_lo = 0.25; ///< epoch ~ U[lo,hi]·horizon
  double epoch_fraction_hi = 0.75;
  double outage_duration = 25.0;
  double floor_fraction = 0.1;     ///< rate multiplier during the outage
};

/// Independent two-state CTMC per server; exactly `failures` servers (chosen
/// uniformly without replacement) are multiplied by floor_fraction on
/// [epoch, epoch + outage_duration).
std::vector<CapacityProfile> sample_correlated_outage_fleet(
    const std::vector<TwoStateMarkovParams>& base,
    const CorrelatedOutageParams& params, double horizon, Rng& rng,
    FleetEventInfo* info = nullptr);

/// Multiplies a base profile by a piecewise-constant factor path (factor
/// times must start at 0 and be strictly increasing; factors > 0). Exposed
/// for tests; the scenario generators build on it.
CapacityProfile scale_profile(const CapacityProfile& base,
                              const std::vector<double>& factor_times,
                              const std::vector<double>& factors);

}  // namespace sjs::cap
