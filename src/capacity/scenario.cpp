#include "capacity/scenario.hpp"

#include <algorithm>
#include <cmath>

#include "util/fp.hpp"
#include "util/logging.hpp"

namespace sjs::cap {

const char* scenario_name(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kSteady:
      return "steady";
    case ScenarioKind::kDiurnal:
      return "diurnal";
    case ScenarioKind::kFlashCrowd:
      return "flash-crowd";
    case ScenarioKind::kCorrelatedOutage:
      return "outage";
  }
  return "unknown";
}

bool parse_scenario(const std::string& text, ScenarioKind* out) {
  for (ScenarioKind kind : all_scenarios()) {
    if (text == scenario_name(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

std::vector<ScenarioKind> all_scenarios() {
  return {ScenarioKind::kSteady, ScenarioKind::kDiurnal,
          ScenarioKind::kFlashCrowd, ScenarioKind::kCorrelatedOutage};
}

CapacityProfile sample_diurnal_ctmc(const TwoStateMarkovParams& base,
                                    const DiurnalParams& params,
                                    double horizon, Rng& rng) {
  SJS_CHECK(base.c_lo > 0.0 && base.c_hi >= base.c_lo);
  SJS_CHECK(base.mean_sojourn_lo > 0.0 && base.mean_sojourn_hi > 0.0);
  SJS_CHECK(params.period > 0.0);
  SJS_CHECK(params.amp_fraction >= 0.0 && params.amp_fraction <= 1.0);
  SJS_CHECK(params.samples_per_period >= 2);
  SJS_CHECK(horizon > 0.0);

  // CTMC switch epochs, same draw sequence as sample_two_state_markov.
  std::vector<double> sw_times;
  std::vector<char> sw_high;
  bool high = rng.bernoulli(base.p_start_hi);
  double t = 0.0;
  while (t < horizon) {
    sw_times.push_back(t);
    sw_high.push_back(high ? 1 : 0);
    t += rng.exponential_mean(high ? base.mean_sojourn_hi
                                   : base.mean_sojourn_lo);
    high = !high;
  }

  const double band = base.c_hi - base.c_lo;
  const double dt =
      params.period / static_cast<double>(params.samples_per_period);
  const auto modulated = [&](double at) {
    const double m =
        1.0 - params.amp_fraction *
                  (0.5 - 0.5 * std::sin(2.0 * M_PI * at / params.period +
                                        params.phase));
    return std::clamp(base.c_lo + band * m, base.c_lo, base.c_hi);
  };

  std::vector<double> times;
  std::vector<double> rates;
  for (std::size_t i = 0; i < sw_times.size(); ++i) {
    const double seg_start = sw_times[i];
    const double seg_end =
        i + 1 < sw_times.size() ? sw_times[i + 1] : horizon;
    if (!sw_high[i]) {
      times.push_back(seg_start);
      rates.push_back(base.c_lo);
      continue;
    }
    // High state: subdivide on the absolute grid k·dt so the sinusoid is
    // sampled at deterministic breakpoints independent of the CTMC path.
    double cursor = seg_start;
    while (cursor < seg_end) {
      // When cursor sits on a grid point, cursor/dt can round just below the
      // integer, making (floor+1)·dt land back on cursor — force progress to
      // the next grid line or the loop degenerates into zero-length segments.
      double next_grid = (std::floor(cursor / dt) + 1.0) * dt;
      if (next_grid <= cursor) next_grid += dt;
      const double stop = std::min(next_grid, seg_end);
      times.push_back(cursor);
      rates.push_back(modulated(cursor + 0.5 * (stop - cursor)));
      cursor = stop;
    }
  }
  return CapacityProfile(std::move(times), std::move(rates));
}

CapacityProfile scale_profile(const CapacityProfile& base,
                              const std::vector<double>& factor_times,
                              const std::vector<double>& factors) {
  SJS_CHECK(!factor_times.empty() && factor_times.size() == factors.size());
  SJS_CHECK_MSG(fp::is_zero(factor_times.front()),
                "factor path must start at 0");
  for (double f : factors) SJS_CHECK_MSG(f > 0.0, "factors must stay positive");

  // Merged, deduplicated breakpoints of the base path and the factor path.
  std::vector<double> times;
  times.reserve(base.breakpoints().size() + factor_times.size());
  std::merge(base.breakpoints().begin(), base.breakpoints().end(),
             factor_times.begin(), factor_times.end(),
             std::back_inserter(times));
  times.erase(std::unique(times.begin(), times.end()), times.end());

  std::vector<double> rates;
  rates.reserve(times.size());
  std::size_t fi = 0;
  for (double bp : times) {
    while (fi + 1 < factor_times.size() && factor_times[fi + 1] <= bp) ++fi;
    rates.push_back(base.rate(bp) * factors[fi]);
  }
  return CapacityProfile(std::move(times), std::move(rates));
}

namespace {

/// Collapse-then-staircase factor path: 1 before the epoch, `floor` during
/// the collapse, then `steps` equal risers back to 1 over recovery_duration
/// (0 steps or 0 duration snaps straight back).
void build_collapse_factors(double epoch, double floor, double collapse_dur,
                            double recovery_dur, std::size_t steps,
                            std::vector<double>* times,
                            std::vector<double>* factors) {
  times->assign(1, 0.0);
  factors->assign(1, 1.0);
  times->push_back(epoch);
  factors->push_back(floor);
  const double recover_start = epoch + collapse_dur;
  if (steps == 0 || recovery_dur <= 0.0) {
    times->push_back(recover_start);
    factors->push_back(1.0);
    return;
  }
  const double riser = recovery_dur / static_cast<double>(steps);
  for (std::size_t s = 0; s < steps; ++s) {
    times->push_back(recover_start + riser * static_cast<double>(s));
    factors->push_back(floor + (1.0 - floor) *
                                   (static_cast<double>(s) + 1.0) /
                                   static_cast<double>(steps));
  }
}

}  // namespace

std::vector<CapacityProfile> sample_flash_crowd_fleet(
    const std::vector<TwoStateMarkovParams>& base,
    const FlashCrowdParams& params, double horizon, Rng& rng,
    FleetEventInfo* info) {
  SJS_CHECK_MSG(!base.empty(), "flash crowd needs at least one server");
  SJS_CHECK(params.collapse_fraction > 0.0 && params.collapse_fraction <= 1.0);
  SJS_CHECK(params.epoch_fraction_lo >= 0.0 &&
            params.epoch_fraction_hi >= params.epoch_fraction_lo &&
            params.epoch_fraction_hi < 1.0);
  SJS_CHECK(params.collapse_duration > 0.0);
  SJS_CHECK(horizon > 0.0);

  // Shared epoch first, then per-server base paths in server order — the
  // fixed draw sequence that makes (seed, run) reproduce the fleet exactly.
  const double epoch =
      rng.uniform(params.epoch_fraction_lo, params.epoch_fraction_hi) *
      horizon;
  std::vector<double> factor_times;
  std::vector<double> factors;
  build_collapse_factors(epoch, params.collapse_fraction,
                         params.collapse_duration, params.recovery_duration,
                         params.recovery_steps, &factor_times, &factors);

  std::vector<CapacityProfile> fleet;
  fleet.reserve(base.size());
  for (const TwoStateMarkovParams& b : base) {
    fleet.push_back(
        scale_profile(sample_two_state_markov(b, horizon, rng), factor_times,
                      factors));
  }
  if (info) {
    info->event_time = epoch;
    info->event_end = epoch + params.collapse_duration +
                      (params.recovery_steps == 0 ? 0.0
                                                  : params.recovery_duration);
    info->affected.resize(base.size());
    for (std::size_t s = 0; s < base.size(); ++s) info->affected[s] = s;
  }
  return fleet;
}

std::vector<CapacityProfile> sample_correlated_outage_fleet(
    const std::vector<TwoStateMarkovParams>& base,
    const CorrelatedOutageParams& params, double horizon, Rng& rng,
    FleetEventInfo* info) {
  SJS_CHECK_MSG(!base.empty(), "outage needs at least one server");
  SJS_CHECK_MSG(params.failures <= base.size(),
                "cannot fail " << params.failures << " of " << base.size());
  SJS_CHECK(params.floor_fraction > 0.0 && params.floor_fraction <= 1.0);
  SJS_CHECK(params.epoch_fraction_lo >= 0.0 &&
            params.epoch_fraction_hi >= params.epoch_fraction_lo &&
            params.epoch_fraction_hi < 1.0);
  SJS_CHECK(params.outage_duration > 0.0);
  SJS_CHECK(horizon > 0.0);

  // Draw order: shared epoch, then the failing subset (partial Fisher-Yates),
  // then per-server base paths in server order.
  const double epoch =
      rng.uniform(params.epoch_fraction_lo, params.epoch_fraction_hi) *
      horizon;
  std::vector<std::size_t> indices(base.size());
  for (std::size_t s = 0; s < base.size(); ++s) indices[s] = s;
  for (std::size_t s = 0; s < params.failures; ++s) {
    const std::size_t pick =
        s + static_cast<std::size_t>(rng.below(indices.size() - s));
    std::swap(indices[s], indices[pick]);
  }
  std::vector<char> down(base.size(), 0);
  for (std::size_t s = 0; s < params.failures; ++s) down[indices[s]] = 1;

  const std::vector<double> factor_times = {0.0, epoch,
                                            epoch + params.outage_duration};
  const std::vector<double> factors = {1.0, params.floor_fraction, 1.0};

  std::vector<CapacityProfile> fleet;
  fleet.reserve(base.size());
  for (std::size_t s = 0; s < base.size(); ++s) {
    CapacityProfile path = sample_two_state_markov(base[s], horizon, rng);
    if (down[s]) {
      fleet.push_back(scale_profile(path, factor_times, factors));
    } else {
      fleet.push_back(std::move(path));
    }
  }
  if (info) {
    info->event_time = epoch;
    info->event_end = epoch + params.outage_duration;
    info->affected.clear();
    for (std::size_t s = 0; s < base.size(); ++s) {
      if (down[s]) info->affected.push_back(s);
    }
  }
  return fleet;
}

}  // namespace sjs::cap
