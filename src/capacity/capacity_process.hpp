// Generators of capacity sample paths.
//
// The paper's simulation (Sec. IV) drives capacity with a two-state
// continuous-time Markov chain (states {c_lo, c_hi} = {1, 35}, exponential
// sojourns with mean H/4). We implement that process plus generalisations
// used by the ablation benches: N-state CTMCs, bounded random walks, and
// sampled sinusoids. Each generator produces a piecewise-constant
// CapacityProfile covering [0, horizon] (the profile itself extends the last
// rate to infinity, which covers deadlines that overhang the horizon).
#pragma once

#include <vector>

#include "capacity/capacity_profile.hpp"
#include "util/rng.hpp"

namespace sjs::cap {

/// The paper's two-state CTMC: alternates between c_lo and c_hi with
/// exponentially distributed sojourn times.
struct TwoStateMarkovParams {
  double c_lo = 1.0;
  double c_hi = 35.0;
  double mean_sojourn_lo = 1.0;  ///< mean time spent at c_lo per visit
  double mean_sojourn_hi = 1.0;  ///< mean time spent at c_hi per visit
  /// Probability the path starts in the high state (paper unspecified; 0.5).
  double p_start_hi = 0.5;
};

CapacityProfile sample_two_state_markov(const TwoStateMarkovParams& params,
                                        double horizon, Rng& rng);

/// General N-state CTMC: `rates[i]` is the capacity in state i,
/// `mean_sojourn[i]` the mean exponential sojourn, and `transition[i][j]` the
/// jump-chain probability of moving to state j when leaving state i
/// (transition[i][i] must be 0; rows sum to 1).
struct MarkovChainParams {
  std::vector<double> rates;
  std::vector<double> mean_sojourn;
  std::vector<std::vector<double>> transition;
  std::size_t start_state = 0;
};

CapacityProfile sample_markov_chain(const MarkovChainParams& params,
                                    double horizon, Rng& rng);

/// Bounded multiplicative random walk: at exponential epochs the rate is
/// multiplied/divided by `step` (clamped to [c_lo, c_hi]). Models slowly
/// drifting residual capacity.
struct RandomWalkParams {
  double c_lo = 1.0;
  double c_hi = 35.0;
  double start = 4.0;
  double step = 1.5;          ///< multiplicative step per epoch, > 1
  double mean_epoch = 1.0;    ///< mean time between steps
};

CapacityProfile sample_random_walk(const RandomWalkParams& params,
                                   double horizon, Rng& rng);

/// Deterministic diurnal pattern: c(t) = mid + amp·sin(2πt/period + phase),
/// sampled onto `samples_per_period` piecewise-constant segments. The sampled
/// value is clamped to [c_lo, c_hi]; c_lo must satisfy mid - amp >= c_lo > 0.
struct SinusoidParams {
  double mid = 18.0;
  double amp = 17.0;
  double period = 100.0;
  double phase = 0.0;
  std::size_t samples_per_period = 64;
  double c_lo = 1.0;
  double c_hi = 35.0;
};

CapacityProfile sample_sinusoid(const SinusoidParams& params, double horizon);

/// Square wave alternating between c_lo (for `low_duration`) and c_hi (for
/// `high_duration`), starting low. Deterministic; handy in unit tests.
CapacityProfile square_wave(double c_lo, double c_hi, double low_duration,
                            double high_duration, double horizon);

}  // namespace sjs::cap
