#include "capacity/capacity_stats.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace sjs::cap {

namespace {

/// Invokes visit(segment_start, segment_end, rate) for every maximal
/// constant-rate piece of the profile inside [t0, t1].
template <typename Visitor>
void for_each_segment(const CapacityProfile& profile, double t0, double t1,
                      Visitor&& visit) {
  SJS_CHECK_MSG(t1 >= t0, "reversed interval");
  double cursor = t0;
  while (cursor < t1) {
    const double next = std::min(t1, profile.next_change(cursor));
    visit(cursor, next, profile.rate(cursor));
    cursor = next;
  }
}

}  // namespace

double mean_rate(const CapacityProfile& profile, double t0, double t1) {
  SJS_CHECK_MSG(t1 > t0, "mean over an empty interval");
  return profile.work(t0, t1) / (t1 - t0);
}

double duty_cycle(const CapacityProfile& profile, double threshold, double t0,
                  double t1) {
  SJS_CHECK_MSG(t1 > t0, "duty cycle over an empty interval");
  double above = 0.0;
  for_each_segment(profile, t0, t1, [&](double s, double e, double rate) {
    if (rate >= threshold) above += e - s;
  });
  return above / (t1 - t0);
}

std::map<double, double> time_at_rate(const CapacityProfile& profile,
                                      double t0, double t1) {
  std::map<double, double> shares;
  for_each_segment(profile, t0, t1, [&](double s, double e, double rate) {
    shares[rate] += e - s;
  });
  return shares;
}

ObservedBand observed_band(const CapacityProfile& profile, double t0,
                           double t1) {
  ObservedBand band;
  bool first = true;
  for_each_segment(profile, t0, t1, [&](double, double, double rate) {
    if (first) {
      band.lo = band.hi = rate;
      first = false;
    } else {
      band.lo = std::min(band.lo, rate);
      band.hi = std::max(band.hi, rate);
    }
  });
  SJS_CHECK_MSG(!first, "empty interval has no observed band");
  return band;
}

std::vector<double> segment_durations(const CapacityProfile& profile,
                                      double t0, double t1) {
  std::vector<double> durations;
  for_each_segment(profile, t0, t1, [&](double s, double e, double) {
    durations.push_back(e - s);
  });
  return durations;
}

FittedTwoStateMarkov fit_two_state_markov(const CapacityProfile& profile,
                                          double t0, double t1) {
  const ObservedBand band = observed_band(profile, t0, t1);
  FittedTwoStateMarkov fit;
  if (band.hi == band.lo) {
    fit.c_lo = fit.c_hi = band.lo;
    fit.mean_sojourn_lo = t1 - t0;
    fit.low_visits = 1;
    return fit;
  }
  const double split = (band.lo + band.hi) / 2.0;

  // Time-weighted mean rate per side; a "visit" is a maximal run of
  // consecutive segments on one side of the split.
  double low_time = 0.0, high_time = 0.0;
  double low_weighted = 0.0, high_weighted = 0.0;
  bool have_run = false;
  bool run_is_high = false;
  for_each_segment(profile, t0, t1, [&](double s, double e, double rate) {
    const bool high = rate >= split;
    const double span = e - s;
    if (high) {
      high_time += span;
      high_weighted += rate * span;
    } else {
      low_time += span;
      low_weighted += rate * span;
    }
    if (!have_run || high != run_is_high) {
      if (high) {
        ++fit.high_visits;
      } else {
        ++fit.low_visits;
      }
      have_run = true;
      run_is_high = high;
    }
  });

  fit.c_lo = low_time > 0.0 ? low_weighted / low_time : band.lo;
  fit.c_hi = high_time > 0.0 ? high_weighted / high_time : band.hi;
  fit.mean_sojourn_lo =
      fit.low_visits ? low_time / static_cast<double>(fit.low_visits) : 0.0;
  fit.mean_sojourn_hi =
      fit.high_visits ? high_time / static_cast<double>(fit.high_visits) : 0.0;
  return fit;
}

}  // namespace sjs::cap
