#include "capacity/capacity_process.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/fp.hpp"

namespace sjs::cap {

CapacityProfile sample_two_state_markov(const TwoStateMarkovParams& params,
                                        double horizon, Rng& rng) {
  SJS_CHECK(params.c_lo > 0.0 && params.c_hi >= params.c_lo);
  SJS_CHECK(params.mean_sojourn_lo > 0.0 && params.mean_sojourn_hi > 0.0);
  SJS_CHECK(horizon > 0.0);
  std::vector<double> times;
  std::vector<double> rates;
  bool high = rng.bernoulli(params.p_start_hi);
  double t = 0.0;
  while (t < horizon) {
    times.push_back(t);
    rates.push_back(high ? params.c_hi : params.c_lo);
    t += rng.exponential_mean(high ? params.mean_sojourn_hi
                                   : params.mean_sojourn_lo);
    high = !high;
  }
  return CapacityProfile(std::move(times), std::move(rates));
}

CapacityProfile sample_markov_chain(const MarkovChainParams& params,
                                    double horizon, Rng& rng) {
  const std::size_t n = params.rates.size();
  SJS_CHECK_MSG(n > 0, "CTMC needs at least one state");
  SJS_CHECK(params.mean_sojourn.size() == n);
  SJS_CHECK(params.transition.size() == n);
  SJS_CHECK(params.start_state < n);
  for (std::size_t i = 0; i < n; ++i) {
    SJS_CHECK(params.rates[i] > 0.0);
    SJS_CHECK(params.mean_sojourn[i] > 0.0);
    SJS_CHECK(params.transition[i].size() == n);
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      SJS_CHECK(params.transition[i][j] >= 0.0);
      row += params.transition[i][j];
    }
    SJS_CHECK_MSG(n == 1 || std::abs(row - 1.0) < 1e-9,
                  "transition row " << i << " sums to " << row);
    SJS_CHECK_MSG(fp::is_zero(params.transition[i][i]),
                  "jump chain must not self-loop (state " << i << ")");
  }

  std::vector<double> times;
  std::vector<double> rates;
  std::size_t state = params.start_state;
  double t = 0.0;
  while (t < horizon) {
    times.push_back(t);
    rates.push_back(params.rates[state]);
    t += rng.exponential_mean(params.mean_sojourn[state]);
    if (n == 1) break;  // single state: constant profile
    // Sample the next state from the jump chain.
    double u = rng.uniform01();
    std::size_t next = n - 1;
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      acc += params.transition[state][j];
      if (u < acc) {
        next = j;
        break;
      }
    }
    state = next;
  }
  return CapacityProfile(std::move(times), std::move(rates));
}

CapacityProfile sample_random_walk(const RandomWalkParams& params,
                                   double horizon, Rng& rng) {
  SJS_CHECK(params.c_lo > 0.0 && params.c_hi >= params.c_lo);
  SJS_CHECK(params.step > 1.0);
  SJS_CHECK(params.mean_epoch > 0.0);
  double rate = std::clamp(params.start, params.c_lo, params.c_hi);
  std::vector<double> times;
  std::vector<double> rates;
  double t = 0.0;
  while (t < horizon) {
    times.push_back(t);
    rates.push_back(rate);
    t += rng.exponential_mean(params.mean_epoch);
    rate = rng.bernoulli(0.5) ? rate * params.step : rate / params.step;
    rate = std::clamp(rate, params.c_lo, params.c_hi);
  }
  return CapacityProfile(std::move(times), std::move(rates));
}

CapacityProfile sample_sinusoid(const SinusoidParams& params, double horizon) {
  SJS_CHECK(params.period > 0.0);
  SJS_CHECK(params.samples_per_period >= 2);
  SJS_CHECK(params.c_lo > 0.0 && params.c_hi >= params.c_lo);
  const double dt = params.period / static_cast<double>(params.samples_per_period);
  std::vector<double> times;
  std::vector<double> rates;
  for (double t = 0.0; t < horizon; t += dt) {
    const double midpoint = t + dt / 2.0;
    double r = params.mid +
               params.amp * std::sin(2.0 * M_PI * midpoint / params.period +
                                     params.phase);
    times.push_back(t);
    rates.push_back(std::clamp(r, params.c_lo, params.c_hi));
  }
  return CapacityProfile(std::move(times), std::move(rates));
}

CapacityProfile square_wave(double c_lo, double c_hi, double low_duration,
                            double high_duration, double horizon) {
  SJS_CHECK(c_lo > 0.0 && c_hi >= c_lo);
  SJS_CHECK(low_duration > 0.0 && high_duration > 0.0);
  std::vector<double> times;
  std::vector<double> rates;
  double t = 0.0;
  bool low = true;
  while (t < horizon) {
    times.push_back(t);
    rates.push_back(low ? c_lo : c_hi);
    t += low ? low_duration : high_duration;
    low = !low;
  }
  return CapacityProfile(std::move(times), std::move(rates));
}

}  // namespace sjs::cap
