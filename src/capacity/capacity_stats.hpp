// Descriptive statistics of capacity sample paths.
//
// Used to characterise generated or imported residual-capacity traces before
// running experiments on them: a trace's *effective* utilisation, duty cycle
// above a threshold, and per-level time shares determine which regime of the
// paper's analysis applies (δ near 1 ⇒ Dover-like; large δ with long
// high-capacity excursions ⇒ the supplement queue pays off).
#pragma once

#include <map>
#include <vector>

#include "capacity/capacity_profile.hpp"

namespace sjs::cap {

/// Time-average rate over [t0, t1]: (1/(t1−t0)) ∫ c.
double mean_rate(const CapacityProfile& profile, double t0, double t1);

/// Fraction of [t0, t1] during which rate(t) >= threshold.
double duty_cycle(const CapacityProfile& profile, double threshold, double t0,
                  double t1);

/// Total time spent at each distinct rate level within [t0, t1].
std::map<double, double> time_at_rate(const CapacityProfile& profile,
                                      double t0, double t1);

/// Observed band over [t0, t1] (may be narrower than the declared band when
/// the sample path never visits an extreme state).
struct ObservedBand {
  double lo = 0.0;
  double hi = 0.0;
  double delta() const { return hi / lo; }
};
ObservedBand observed_band(const CapacityProfile& profile, double t0,
                           double t1);

/// Durations of the profile's constant segments intersected with [t0, t1]
/// (the sojourn-time sample for CTMC parameter recovery).
std::vector<double> segment_durations(const CapacityProfile& profile,
                                      double t0, double t1);

/// Two-state CTMC parameters recovered from a sample path: rates are split
/// at the midpoint of the observed band into a "low" and a "high" level
/// (each estimated as the time-weighted mean rate of its side) and the mean
/// sojourns come from the maximal runs spent on each side. This is the
/// moment estimator a user applies to an imported residual-capacity trace
/// before generating synthetic workloads with TwoStateMarkovParams.
struct FittedTwoStateMarkov {
  double c_lo = 0.0;
  double c_hi = 0.0;
  double mean_sojourn_lo = 0.0;  ///< 0 when the path never visits that side
  double mean_sojourn_hi = 0.0;
  std::size_t low_visits = 0;    ///< number of maximal low-side runs
  std::size_t high_visits = 0;
};

/// Fits over [t0, t1]. Degenerate (constant) paths return c_lo == c_hi with
/// a single visit on the low side.
FittedTwoStateMarkov fit_two_state_markov(const CapacityProfile& profile,
                                          double t0, double t1);

}  // namespace sjs::cap
