// Capacity trace persistence: save/load piecewise-constant capacity profiles
// as two-column CSV (time, rate). This is the substitution point for real
// datacenter residual-capacity traces — a user with production telemetry
// exports it in this format and the whole library runs against it unchanged.
#pragma once

#include <string>

#include "capacity/capacity_profile.hpp"

namespace sjs::cap {

/// Writes the profile breakpoints as CSV with a "time,rate" header.
void save_trace(const CapacityProfile& profile, const std::string& path);

/// Reads a CSV trace (header optional). Throws std::runtime_error on
/// malformed input (non-numeric fields, unsorted times, non-positive rates).
CapacityProfile load_trace(const std::string& path);

}  // namespace sjs::cap
