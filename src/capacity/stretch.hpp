// The paper's offline reduction (Sec. III-A): the time-scale stretch
// transformation.
//
//   T(t; c_lo) = (1 / c_lo) ∫_0^t c(τ) dτ
//
// maps the varying-capacity axis onto a "stretched" axis where the processor
// runs at constant rate c_lo. The transformation preserves the workload
// completable between any two epochs:
//
//   ∫_{s}^{t} c(τ)dτ = ∫_{T(s)}^{T(t)} c_lo dτ',
//
// so a job set is schedulable under c(t) iff the stretched job set (release
// T(r), deadline T(d), same workload and value) is schedulable at constant
// rate c_lo — a value-preserving bijection between offline schedules.
//
// Because c(t) >= c_lo > 0, T is a strictly increasing bijection of [0, inf)
// onto itself and the inverse is well defined.
#pragma once

#include "capacity/capacity_profile.hpp"

namespace sjs::cap {

class StretchTransform {
 public:
  /// Stretches relative to `reference_rate`; the paper uses c_lo (the band
  /// minimum). Any positive reference yields a valid bijection.
  StretchTransform(const CapacityProfile& profile, double reference_rate);

  /// Stretches relative to profile.min_rate(), the paper's choice.
  explicit StretchTransform(const CapacityProfile& profile)
      : StretchTransform(profile, profile.min_rate()) {}

  /// T(t): original time -> stretched time.
  double forward(double t) const;

  /// T^{-1}(t'): stretched time -> original time.
  double inverse(double t_stretched) const;

  double reference_rate() const { return reference_rate_; }

  /// The transformed capacity profile: constant reference_rate on [0, inf).
  CapacityProfile stretched_profile() const {
    return CapacityProfile(reference_rate_);
  }

 private:
  const CapacityProfile& profile_;
  double reference_rate_;
};

}  // namespace sjs::cap
