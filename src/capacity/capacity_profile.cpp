#include "capacity/capacity_profile.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "util/fp.hpp"

namespace sjs::cap {

CapacityProfile::CapacityProfile(double constant_rate)
    : CapacityProfile(std::vector<double>{0.0},
                      std::vector<double>{constant_rate}) {}

CapacityProfile::CapacityProfile(std::vector<double> times,
                                 std::vector<double> rates)
    : times_(std::move(times)), rates_(std::move(rates)) {
  SJS_CHECK_MSG(!times_.empty(), "profile needs at least one segment");
  SJS_CHECK_MSG(times_.size() == rates_.size(), "times/rates size mismatch");
  SJS_CHECK_MSG(fp::is_zero(times_[0]), "profile must start at t=0");
  for (std::size_t i = 1; i < times_.size(); ++i) {
    SJS_CHECK_MSG(times_[i] > times_[i - 1],
                  "breakpoints must be strictly increasing");
  }
  min_rate_ = rates_[0];
  max_rate_ = rates_[0];
  for (double r : rates_) {
    SJS_CHECK_MSG(r > 0.0, "capacity rates must be positive (c_lo > 0)");
    min_rate_ = std::min(min_rate_, r);
    max_rate_ = std::max(max_rate_, r);
  }
  cum_.resize(times_.size());
  cum_[0] = 0.0;
  for (std::size_t i = 1; i < times_.size(); ++i) {
    cum_[i] = cum_[i - 1] + rates_[i - 1] * (times_[i] - times_[i - 1]);
  }
}

std::size_t CapacityProfile::segment_index(double t) const {
  SJS_CHECK_MSG(t >= 0.0, "time must be non-negative, got " << t);
  // upper_bound returns the first breakpoint strictly greater than t.
  auto it = std::upper_bound(times_.begin(), times_.end(), t);
  return static_cast<std::size_t>(it - times_.begin()) - 1;
}

double CapacityProfile::rate(double t) const {
  return rates_[segment_index(t)];
}

double CapacityProfile::cumulative(double t) const {
  const std::size_t i = segment_index(t);
  return cum_[i] + rates_[i] * (t - times_[i]);
}

double CapacityProfile::work(double t1, double t2) const {
  SJS_CHECK_MSG(t2 >= t1, "work() interval reversed: [" << t1 << ", " << t2
                                                        << "]");
  return cumulative(t2) - cumulative(t1);
}

double CapacityProfile::invert(double t, double w) const {
  SJS_CHECK_MSG(w >= 0.0, "workload must be non-negative");
  if (fp::is_zero(w)) return t;
  const double target = cumulative(t) + w;
  // Find the segment in which the cumulative work reaches `target`.
  // cum_[i] is the cumulative work at the *start* of segment i; the last
  // segment extends to infinity, so the target is always reachable.
  auto it = std::upper_bound(cum_.begin(), cum_.end(), target);
  const std::size_t i = static_cast<std::size_t>(it - cum_.begin()) - 1;
  return times_[i] + (target - cum_[i]) / rates_[i];
}

std::size_t CapacityProfile::Cursor::seek(double t) {
  const auto& times = profile_->times_;
  if (t < times[hint_]) {
    // Backward jump: not the engine's pattern; correctness over speed.
    hint_ = profile_->segment_index(t);
    return hint_;
  }
  while (hint_ + 1 < times.size() && times[hint_ + 1] <= t) ++hint_;
  return hint_;
}

double CapacityProfile::Cursor::cumulative(double t) {
  // Same expression as CapacityProfile::cumulative — results must be
  // bit-identical or replay digests would shift under the cursor.
  const std::size_t i = seek(t);
  return profile_->cum_[i] + profile_->rates_[i] * (t - profile_->times_[i]);
}

double CapacityProfile::Cursor::work(double t1, double t2) {
  SJS_CHECK_MSG(t2 >= t1, "work() interval reversed: [" << t1 << ", " << t2
                                                        << "]");
  const double c1 = cumulative(t1);
  return cumulative(t2) - c1;
}

double CapacityProfile::Cursor::invert(double t, double w) {
  SJS_CHECK_MSG(w >= 0.0, "workload must be non-negative");
  if (fp::is_zero(w)) return t;
  const auto& cum = profile_->cum_;
  const std::size_t start = seek(t);
  const double target = cum[start] +
                        profile_->rates_[start] * (t - profile_->times_[start]) +
                        w;
  // Gallop forward for the largest i with cum_[i] <= target (cum_ is strictly
  // increasing). The hint stays at `start`: the next on-time query must not
  // see the completion-instant lookahead as a backward jump.
  std::size_t lo = start;
  std::size_t hi = start + 1;
  std::size_t step = 1;
  while (hi < cum.size() && cum[hi] <= target) {
    lo = hi;
    hi += step;
    step *= 2;
  }
  const auto first = cum.begin() + static_cast<std::ptrdiff_t>(lo + 1);
  const auto last =
      cum.begin() + static_cast<std::ptrdiff_t>(std::min(hi, cum.size()));
  const auto it = std::upper_bound(first, last, target);
  const std::size_t i = static_cast<std::size_t>(it - cum.begin()) - 1;
  return profile_->times_[i] +
         (target - cum[i]) / profile_->rates_[i];
}

double CapacityProfile::next_change(double t) const {
  auto it = std::upper_bound(times_.begin(), times_.end(), t);
  if (it == times_.end()) return kInfinity;
  return *it;
}

}  // namespace sjs::cap
