#include "capacity/stretch.hpp"

#include "util/logging.hpp"

namespace sjs::cap {

StretchTransform::StretchTransform(const CapacityProfile& profile,
                                   double reference_rate)
    : profile_(profile), reference_rate_(reference_rate) {
  SJS_CHECK_MSG(reference_rate > 0.0, "reference rate must be positive");
}

double StretchTransform::forward(double t) const {
  return profile_.cumulative(t) / reference_rate_;
}

double StretchTransform::inverse(double t_stretched) const {
  SJS_CHECK(t_stretched >= 0.0);
  // T(t) = W(t)/c_ref, so T^{-1}(t') is the time at which cumulative work
  // reaches c_ref * t' — exactly CapacityProfile::invert from time 0.
  return profile_.invert(0.0, reference_rate_ * t_stretched);
}

}  // namespace sjs::cap
