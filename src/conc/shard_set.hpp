// conc::ShardSet — the thread-lifecycle half of the sharded runtime.
//
// Owns N shard threads, each running a caller-provided body with its shard
// index. Deliberately tiny: channels carry all data (conc/channel.hpp), so
// the ShardSet only has to guarantee the lifecycle contract of the sharded
// admission plane:
//
//   spawn(n, body)  starts shards 0..n-1, in index order.
//   join()          joins shard 0, then 1, … — DETERMINISTIC drain order.
//                   The caller closes each shard's input channel first
//                   (also in shard order); a body exits when its input
//                   drains, so join() is the barrier after which every
//                   shard's journal and result are safe to read from the
//                   joining thread.
//
// The destructor joins too (RAII), but a body that never observes its
// channel close would hang it — always close inputs before teardown.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace sjs::conc {

class ShardSet {
 public:
  ShardSet() = default;
  ~ShardSet() { join(); }

  ShardSet(const ShardSet&) = delete;
  ShardSet& operator=(const ShardSet&) = delete;

  /// Starts `n` shard threads running body(shard_index). Call once.
  void spawn(std::size_t n, std::function<void(std::size_t)> body);

  /// Joins every shard in index order. Idempotent.
  void join();

  std::size_t size() const { return threads_.size(); }
  bool joined() const { return joined_; }

 private:
  std::vector<std::thread> threads_;
  bool joined_ = false;
};

}  // namespace sjs::conc
