#include "conc/shard_set.hpp"

#include "util/logging.hpp"

namespace sjs::conc {

void ShardSet::spawn(std::size_t n, std::function<void(std::size_t)> body) {
  SJS_CHECK_MSG(threads_.empty(), "ShardSet::spawn called twice");
  SJS_CHECK_MSG(n > 0, "ShardSet needs at least one shard");
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back(body, i);
  }
}

void ShardSet::join() {
  if (joined_) return;
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  joined_ = true;
}

}  // namespace sjs::conc
