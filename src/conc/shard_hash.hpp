// Deterministic job→shard hashing for the sharded admission plane.
//
// The acceptor assigns every submission a dense global ticket (0, 1, 2, …)
// and routes it to shard `shard_of(ticket, nshards)`. The mapping is part of
// the serving contract: it is pure, documented, and pinned by golden-value
// tests (tests/conc_test.cpp), so a journal set produced by an N-shard
// session can be reasoned about — and re-partitioned — offline. Changing
// this function is a format break for multi-shard journal sets.
//
// splitmix64 is Sebastiano Vigna's public-domain finalizer (the SplitMix64
// generator's output stage): a fixed-point-free bijection on u64 with full
// avalanche, so consecutive tickets scatter uniformly across shards instead
// of striping — a burst of arrivals lands on distinct shards with high
// probability even when nshards shares factors with the arrival pattern.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sjs::conc {

/// SplitMix64 finalizer: bijective, avalanching u64 → u64.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// The job→shard map: splitmix64 over the global ticket, reduced mod N.
constexpr std::size_t shard_of(std::uint64_t ticket, std::size_t nshards) {
  return nshards <= 1
             ? 0
             : static_cast<std::size_t>(splitmix64(ticket) %
                                        static_cast<std::uint64_t>(nshards));
}

}  // namespace sjs::conc
