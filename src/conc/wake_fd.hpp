// WakeFd — a poll(2)-composable wakeup primitive (eventfd / self-pipe).
//
// The channel subsystem needs a way for a producer thread to rouse a
// consumer that is parked in poll(2) over sockets: the producer signals,
// the consumer sees the fd readable alongside its other fds, drains it, and
// services the channel. On Linux this is one eventfd; elsewhere it degrades
// to a nonblocking self-pipe pair. Either way the contract is identical:
//
//   signal()  — async-signal-unsafe but thread-safe; edge-coalescing (many
//               signals before a drain still cost one wakeup). Never blocks:
//               a full pipe simply means a wakeup is already pending.
//   fd()      — the readable end, registered with poll/select by the ONE
//               consumer thread.
//   drain()   — consumer-side: consumes every pending wakeup so the fd stops
//               polling readable until the next signal().
//
// Level-triggered consumers must drain() before re-polling or they spin.
#pragma once

namespace sjs::conc {

class WakeFd {
 public:
  /// Opens the eventfd (or pipe pair). Throws std::runtime_error on failure.
  WakeFd();
  ~WakeFd();

  WakeFd(const WakeFd&) = delete;
  WakeFd& operator=(const WakeFd&) = delete;

  /// Makes fd() readable. Thread-safe, nonblocking, coalescing.
  void signal();

  /// The readable end for the consumer's poll set.
  int fd() const { return read_fd_; }

  /// Consumes all pending wakeups (consumer thread only).
  void drain();

 private:
  int read_fd_ = -1;
  int write_fd_ = -1;  // == read_fd_ when backed by an eventfd
};

}  // namespace sjs::conc
