// conc::Channel<T> — bounded MPSC channel with two-phase sends and a
// close/drain state machine, designed to compose with poll(2) event loops.
//
// This is the ONLY sanctioned cross-thread traffic primitive for the serving
// plane (the raw-concurrency lint rule bans std::thread/std::mutex/atomics
// in src/serve/ and src/sched/ outside src/conc/ and util/thread_pool).
//
// Shape: a fixed ring of `capacity` slots, preallocated at construction —
// steady state allocates nothing as long as T's move assignment does not.
// Many producers, ONE consumer.
//
// Two-phase send protocol:
//
//   reserve()        claims the next ring slot (kFull when `capacity`
//                    reservations are unconsumed, kClosed after close()).
//   commit(res, v)   publishes the value into the claimed slot.
//   abort(res)       relinquishes the claim without publishing.
//   try_send(v)      reserve+commit in one call (the common case).
//
// Reserving fixes the message's delivery position *before* the value is
// built: the consumer receives messages in reservation order, never in
// commit-completion order. This is the deterministic tie-break contract — a
// slot committed late still delivers in its reserved position, and the
// consumer waits (kEmpty) rather than reordering around an unresolved
// reservation. An aborted reservation is skipped silently but still spends
// its position.
//
// Close/drain state machine:
//
//   open ──close()──▶ closed ──(all slots consumed)──▶ drained
//
// close() only refuses NEW reservations; outstanding reservations may still
// commit or abort, and everything already in the ring stays deliverable.
// The consumer keeps popping until try_pop returns kDrained — that is the
// barrier that makes "close, then join" lossless.
//
// Wakeups: the channel owns a WakeFd (eventfd, self-pipe fallback). Any
// transition the consumer may be parked on (commit, abort, close) signals
// it; the consumer registers wake_fd() in its poll set and must
// drain_wakeups() then pop until kEmpty/kDrained on every wakeup. A pending
// flag coalesces signals so steady-state cost is one atomic exchange per
// send and one syscall per consumer sleep/wake cycle.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "conc/wake_fd.hpp"
#include "util/logging.hpp"

namespace sjs::conc {

// Namespace-scope so call sites and tests can name them without spelling
// the channel's value type.
enum class SendStatus : std::uint8_t {
  kOk,      ///< reservation claimed / message enqueued
  kFull,    ///< `capacity` reservations are unconsumed — backpressure
  kClosed,  ///< close() was called; no new sends
};

enum class PopStatus : std::uint8_t {
  kOk,       ///< a message was delivered
  kEmpty,    ///< nothing deliverable right now (open, or awaiting commits)
  kDrained,  ///< closed AND every reservation resolved and consumed
};

template <typename T>
class Channel {
 public:
  /// A claimed-but-unresolved slot. Resolve with commit() or abort()
  /// exactly once; dropping a valid reservation wedges the consumer at its
  /// position (checked in debug via outstanding accounting at destruction).
  struct Reservation {
    std::uint64_t seq = 0;
    bool valid = false;
  };

  explicit Channel(std::size_t capacity) : slots_(capacity) {
    SJS_CHECK_MSG(capacity > 0, "Channel capacity must be positive");
  }

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  // --- producer side (any thread) ----------------------------------------

  /// Claims the next delivery position.
  SendStatus reserve(Reservation& out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return SendStatus::kClosed;
    if (tail_ - head_ >= slots_.size()) return SendStatus::kFull;
    Slot& s = slot(tail_);
    SJS_CHECK_MSG(s.state == SlotState::kEmpty, "Channel ring corrupted");
    s.state = SlotState::kReserved;
    out.seq = tail_++;
    out.valid = true;
    return SendStatus::kOk;
  }

  /// Publishes `value` at the reserved position and invalidates `res`.
  void commit(Reservation& res, T value) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      SJS_CHECK_MSG(res.valid, "commit on an invalid reservation");
      Slot& s = slot(res.seq);
      SJS_CHECK_MSG(s.state == SlotState::kReserved,
                    "commit on an unreserved slot");
      s.value = std::move(value);
      s.state = SlotState::kReady;
      res.valid = false;
    }
    signal_consumer();
  }

  /// Relinquishes the reservation; the position is skipped on delivery.
  void abort(Reservation& res) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      SJS_CHECK_MSG(res.valid, "abort on an invalid reservation");
      Slot& s = slot(res.seq);
      SJS_CHECK_MSG(s.state == SlotState::kReserved,
                    "abort on an unreserved slot");
      s.state = SlotState::kAborted;
      res.valid = false;
    }
    // An abort at the head can unblock already-committed successors.
    signal_consumer();
  }

  /// reserve + commit. kFull/kClosed leave `value` unsent.
  SendStatus try_send(T value) {
    Reservation res;
    const SendStatus st = reserve(res);
    // sjs-lint: allow(channel-discipline): failure-branch return — a failed reserve() claims no slot (res stays invalid), so there is nothing to resolve.
    if (st != SendStatus::kOk) return st;
    commit(res, std::move(value));
    return SendStatus::kOk;
  }

  /// Refuses new reservations. Idempotent; callable from any thread.
  /// Outstanding reservations still resolve, queued messages still deliver.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return;
      closed_ = true;
    }
    signal_consumer();
  }

  // --- consumer side (one thread) -----------------------------------------

  /// Delivers the next message in reservation order. kEmpty while the head
  /// position is an unresolved reservation (in-order delivery never skips
  /// ahead of one).
  PopStatus try_pop(T& out) {
    std::lock_guard<std::mutex> lock(mu_);
    while (head_ != tail_) {
      Slot& s = slot(head_);
      if (s.state == SlotState::kReady) {
        out = std::move(s.value);
        s.value = T{};
        s.state = SlotState::kEmpty;
        ++head_;
        return PopStatus::kOk;
      }
      if (s.state == SlotState::kAborted) {
        s.state = SlotState::kEmpty;
        ++head_;
        continue;
      }
      return PopStatus::kEmpty;  // kReserved: wait for the producer
    }
    return closed_ ? PopStatus::kDrained : PopStatus::kEmpty;
  }

  /// The fd to include in the consumer's poll set (readable on wakeup).
  int wake_fd() const { return wake_.fd(); }

  /// Consumes pending wakeups and re-arms signalling. Call on every poll
  /// wakeup BEFORE popping: a message committed after the final kEmpty then
  /// re-signals the fd, so no transition is ever missed.
  void drain_wakeups() {
    wake_.drain();
    signal_pending_.store(false, std::memory_order_release);
  }

  // --- introspection (either side; values are instantaneous) ---------------

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// closed AND fully consumed — the terminal state.
  bool drained() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_ && head_ == tail_;
  }

  std::size_t capacity() const { return slots_.size(); }

  /// Unconsumed reservations (committed, aborted, or pending).
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<std::size_t>(tail_ - head_);
  }

 private:
  enum class SlotState : std::uint8_t { kEmpty, kReserved, kReady, kAborted };

  struct Slot {
    T value{};
    SlotState state = SlotState::kEmpty;
  };

  Slot& slot(std::uint64_t seq) { return slots_[seq % slots_.size()]; }

  void signal_consumer() {
    // Coalesce: only the first signal after a drain pays the syscall.
    if (!signal_pending_.exchange(true, std::memory_order_acq_rel)) {
      wake_.signal();
    }
  }

  mutable std::mutex mu_;
  std::vector<Slot> slots_;
  std::uint64_t head_ = 0;  // next position to consume (absolute)
  std::uint64_t tail_ = 0;  // next position to reserve (absolute)
  bool closed_ = false;
  std::atomic<bool> signal_pending_{false};
  WakeFd wake_;
};

}  // namespace sjs::conc
