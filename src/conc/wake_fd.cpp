#include "conc/wake_fd.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

#if defined(__linux__)
#include <sys/eventfd.h>
#define SJS_CONC_HAVE_EVENTFD 1
#endif

namespace sjs::conc {

#if !SJS_CONC_HAVE_EVENTFD
namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace
#endif

WakeFd::WakeFd() {
#if SJS_CONC_HAVE_EVENTFD
  read_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (read_fd_ < 0) {
    throw std::runtime_error(std::string("eventfd: ") + std::strerror(errno));
  }
  write_fd_ = read_fd_;
#else
  int fds[2];
  if (::pipe(fds) != 0) {
    throw std::runtime_error(std::string("pipe: ") + std::strerror(errno));
  }
  read_fd_ = fds[0];
  write_fd_ = fds[1];
  set_nonblocking(read_fd_);
  set_nonblocking(write_fd_);
#endif
}

WakeFd::~WakeFd() {
  if (read_fd_ >= 0) ::close(read_fd_);
  if (write_fd_ >= 0 && write_fd_ != read_fd_) ::close(write_fd_);
}

void WakeFd::signal() {
#if SJS_CONC_HAVE_EVENTFD
  const std::uint64_t one = 1;
  // EAGAIN means the counter is saturated — a wakeup is already pending,
  // which is all signal() promises.
  [[maybe_unused]] const ssize_t n =
      ::write(write_fd_, &one, sizeof(one));
#else
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(write_fd_, &byte, 1);
#endif
}

void WakeFd::drain() {
#if SJS_CONC_HAVE_EVENTFD
  std::uint64_t count = 0;
  while (::read(read_fd_, &count, sizeof(count)) > 0) {
  }
#else
  char buf[64];
  while (::read(read_fd_, buf, sizeof(buf)) > 0) {
  }
#endif
}

}  // namespace sjs::conc
