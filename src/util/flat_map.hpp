// FlatU64Map — open-addressing u64 -> i64 hash map for hot-path id routing.
//
// Replaces std::map/std::unordered_map on steady-state paths where node
// churn would allocate per insert (e.g. the shard workers' ticket -> JobId
// route table). Design points:
//
//   * power-of-two table, linear probing, splitmix64 finalizer as the hash
//     (the same mixer the shard router pins — good avalanche on sequential
//     tickets);
//   * insert-or-assign and find only — no erase (tickets are never
//     reassigned), which keeps probing tombstone-free;
//   * reserve(n) pre-sizes for n entries at <= 50% load; growth beyond the
//     pre-size rehashes geometrically (growth-to-high-water, not
//     per-operation — the zero-alloc ratchet tests pin this at runtime);
//   * clear() keeps capacity for reuse.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sjs::util {

class FlatU64Map {
 public:
  FlatU64Map() = default;

  /// Pre-sizes the table so `n` entries fit without rehashing.
  void reserve(std::size_t n) {
    std::size_t want = 16;
    while (want < 2 * n) want <<= 1;
    if (want > slots_.size()) rehash(want);
  }

  /// Inserts or overwrites. Amortized O(1); allocates only when the table
  /// grows past its high-water capacity.
  void put(std::uint64_t key, std::int64_t value) {
    if (slots_.empty() || 2 * (size_ + 1) > slots_.size()) {
      rehash(slots_.empty() ? 16 : slots_.size() * 2);
    }
    Slot& slot = probe(key);
    if (!slot.used) {
      slot.used = true;
      slot.key = key;
      ++size_;
    }
    slot.value = value;
  }

  /// Returns the mapped value or `missing` when absent.
  std::int64_t get(std::uint64_t key, std::int64_t missing) const {
    if (slots_.empty()) return missing;
    const Slot& slot = const_cast<FlatU64Map*>(this)->probe(key);
    return slot.used ? slot.value : missing;
  }

  bool contains(std::uint64_t key) const {
    if (slots_.empty()) return false;
    return const_cast<FlatU64Map*>(this)->probe(key).used;
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return slots_.size(); }

  /// Empties the map, keeping the table storage.
  void clear() {
    for (Slot& slot : slots_) slot.used = false;
    size_ = 0;
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    std::int64_t value = 0;
    bool used = false;
  };

  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  /// First slot holding `key`, or the empty slot where it would go.
  Slot& probe(std::uint64_t key) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(mix(key)) & mask;
    while (slots_[i].used && slots_[i].key != key) i = (i + 1) & mask;
    return slots_[i];
  }

  void rehash(std::size_t new_size) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_size, Slot{});
    size_ = 0;
    for (const Slot& slot : old) {
      if (slot.used) put(slot.key, slot.value);
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace sjs::util
