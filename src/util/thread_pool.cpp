#include "util/thread_pool.hpp"

#include <algorithm>

namespace sjs {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t workers = pool.size();
  const std::size_t block = (n + workers - 1) / workers;
  for (std::size_t start = 0; start < n; start += block) {
    const std::size_t end = std::min(n, start + block);
    pool.submit([&body, start, end] {
      for (std::size_t i = start; i < end; ++i) body(i);
    });
  }
  pool.wait_idle();
}

}  // namespace sjs
