// Deterministic, splittable random number generation for simulations.
//
// Monte-Carlo experiments must be reproducible run-to-run and independent of
// thread scheduling, so every simulation run derives its own Rng from a
// (master_seed, run_index) pair via SplitMix64 — never from shared state.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace sjs {

/// SplitMix64: used to seed and to derive independent streams.
/// Passes BigCrush; trivially splittable by seeding from distinct inputs.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) — the workhorse generator.
/// Satisfies the C++ UniformRandomBitGenerator requirements.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0xD1B54A32D192ED03ULL) { reseed(seed); }

  /// Derives an independent stream for run `stream` of master seed `seed`.
  /// Distinct (seed, stream) pairs yield de-correlated state initialisations.
  Rng(std::uint64_t seed, std::uint64_t stream) {
    SplitMix64 mix(seed ^ (0x9E3779B97F4A7C15ULL * (stream + 1)));
    for (auto& s : s_) s = mix.next();
  }

  void reseed(std::uint64_t seed) {
    SplitMix64 mix(seed);
    for (auto& s : s_) s = mix.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Exponential with the given mean (mean = 1/rate). Strictly positive.
  double exponential_mean(double mean);

  /// Exponential with the given rate. Strictly positive.
  double exponential_rate(double rate) { return exponential_mean(1.0 / rate); }

  /// Uniform integer in [0, n). Unbiased (rejection sampling).
  std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli(p).
  bool bernoulli(double p) { return uniform01() < p; }

  /// Standard normal via Marsaglia polar method.
  double normal();

  /// Bounded Pareto on [lo, hi] with shape alpha (heavy-tailed workloads).
  double bounded_pareto(double alpha, double lo, double hi);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  // Cached second normal deviate from the polar method.
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace sjs
