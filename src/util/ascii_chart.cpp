#include "util/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace sjs {

namespace {

struct Bounds {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();

  void include(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  bool valid() const { return lo <= hi; }
  double span() const { return hi > lo ? hi - lo : 1.0; }
};

std::string format_tick(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%10.4g", v);
  return buf;
}

}  // namespace

std::string render_ascii_chart(const std::vector<AsciiSeries>& series,
                               const AsciiChartOptions& options) {
  Bounds bx, by;
  for (const auto& s : series) {
    for (double v : s.x) bx.include(v);
    for (double v : s.y) by.include(v);
  }
  std::ostringstream os;
  if (!options.title.empty()) os << options.title << "\n";
  if (!bx.valid() || !by.valid()) {
    os << "(no data)\n";
    return os.str();
  }

  const int w = std::max(8, options.width);
  const int h = std::max(4, options.height);
  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));

  for (const auto& s : series) {
    const std::size_t n = std::min(s.x.size(), s.y.size());
    for (std::size_t i = 0; i < n; ++i) {
      int col = static_cast<int>(
          std::lround((s.x[i] - bx.lo) / bx.span() * (w - 1)));
      int row = static_cast<int>(
          std::lround((s.y[i] - by.lo) / by.span() * (h - 1)));
      col = std::clamp(col, 0, w - 1);
      row = std::clamp(row, 0, h - 1);
      // Row 0 of the grid is the top of the chart.
      grid[static_cast<std::size_t>(h - 1 - row)]
          [static_cast<std::size_t>(col)] = s.marker;
    }
  }

  if (!options.y_label.empty()) os << options.y_label << "\n";
  for (int r = 0; r < h; ++r) {
    double y_val = by.hi - by.span() * r / (h - 1);
    // Label the top, middle and bottom rows only to keep the chart compact.
    if (r == 0 || r == h - 1 || r == h / 2) {
      os << format_tick(y_val) << " |";
    } else {
      os << std::string(10, ' ') << " |";
    }
    os << grid[static_cast<std::size_t>(r)] << "\n";
  }
  os << std::string(11, ' ') << '+' << std::string(static_cast<std::size_t>(w), '-')
     << "\n";
  os << std::string(12, ' ') << format_tick(bx.lo)
     << std::string(static_cast<std::size_t>(std::max(0, w - 22)), ' ')
     << format_tick(bx.hi) << "\n";
  if (!options.x_label.empty()) {
    os << std::string(12, ' ') << options.x_label << "\n";
  }
  for (const auto& s : series) {
    os << "  " << s.marker << " = " << s.name << "\n";
  }
  return os.str();
}

std::string render_sparkline(const std::vector<double>& y) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (y.empty()) return "";
  Bounds b;
  for (double v : y) b.include(v);
  std::string out;
  for (double v : y) {
    int level = static_cast<int>((v - b.lo) / b.span() * 7.0);
    level = std::clamp(level, 0, 7);
    out += kLevels[level];
  }
  return out;
}

}  // namespace sjs
