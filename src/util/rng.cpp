#include "util/rng.hpp"

#include <cmath>
#include "util/fp.hpp"

namespace sjs {

double Rng::exponential_mean(double mean) {
  // -mean * log(U) with U in (0, 1]; uniform01() is in [0, 1) so flip it.
  double u = 1.0 - uniform01();
  return -mean * std::log(u);
}

std::uint64_t Rng::below(std::uint64_t n) {
  if (n == 0) return 0;
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // 2^64 mod n
  for (;;) {
    std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || fp::is_zero(s));
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::bounded_pareto(double alpha, double lo, double hi) {
  // Inverse-CDF sampling of the bounded Pareto distribution.
  const double u = uniform01();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

}  // namespace sjs
