#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

namespace sjs {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

namespace detail {
void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
  std::ostringstream os;
  os << "SJS_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) os << " — " << message;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace sjs
