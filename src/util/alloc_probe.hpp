#pragma once

// Test-only global operator-new interposition counter — the runtime twin of
// sjs_lint's alloc-in-hot-path rule. The matching alloc_probe.cpp replaces
// the global allocation functions for the WHOLE binary it is linked into, so
// it lives in its own static library (sjs_alloc_probe) that only opted-in
// test executables link; nothing in vdover depends on it.
//
// Usage in a ratchet test:
//
//   util::AllocProbe::reset();
//   ... steady-state region under test ...
//   EXPECT_LE(util::AllocProbe::count(), kBaseline);
//
// Counting is a relaxed atomic increment per allocation — cheap enough to
// leave armed for a whole test binary, but the counters are process-global:
// serialize regions of interest (gtest runs tests sequentially, which is
// enough) and do not expect exact counts across threads you do not control.

#include <cstddef>
#include <cstdint>

namespace sjs::util {

class AllocProbe {
 public:
  /// Number of successful allocations (any operator new flavor) since the
  /// last reset().
  static std::uint64_t count();

  /// Total bytes requested by those allocations.
  static std::uint64_t bytes();

  /// Zero both counters.
  static void reset();
};

}  // namespace sjs::util
