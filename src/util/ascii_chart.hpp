// ASCII line charts for terminal output of benchmark series.
//
// The benches reproduce the paper's figures; since they run headless, each
// figure is written both as CSV (for external plotting) and as an ASCII chart
// so the shape is visible directly in the bench log.
#pragma once

#include <string>
#include <vector>

namespace sjs {

struct AsciiSeries {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;  // same length as x
  char marker = '*';
};

struct AsciiChartOptions {
  int width = 72;    // plot area columns
  int height = 20;   // plot area rows
  std::string title;
  std::string x_label;
  std::string y_label;
};

/// Renders one or more (x, y) series onto a shared axis-scaled grid.
/// Series may have different x grids; each point is nearest-cell plotted.
std::string render_ascii_chart(const std::vector<AsciiSeries>& series,
                               const AsciiChartOptions& options);

/// Renders a compact one-line sparkline of y values (8-level Unicode blocks).
std::string render_sparkline(const std::vector<double>& y);

}  // namespace sjs
