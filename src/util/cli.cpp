#include "util/cli.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace sjs {

std::vector<double> parse_double_list(const std::string& s) {
  std::vector<double> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    std::size_t pos = 0;
    double v = std::stod(item, &pos);
    if (pos != item.size()) {
      throw std::invalid_argument("malformed number in list: " + item);
    }
    out.push_back(v);
  }
  return out;
}

void CliFlags::add_double(const std::string& name, double def,
                          const std::string& help) {
  Flag f;
  f.type = Type::kDouble;
  f.help = help;
  f.d = def;
  flags_[name] = std::move(f);
}

void CliFlags::add_int(const std::string& name, std::int64_t def,
                       const std::string& help) {
  Flag f;
  f.type = Type::kInt;
  f.help = help;
  f.i = def;
  flags_[name] = std::move(f);
}

void CliFlags::add_bool(const std::string& name, bool def,
                        const std::string& help) {
  Flag f;
  f.type = Type::kBool;
  f.help = help;
  f.b = def;
  flags_[name] = std::move(f);
}

void CliFlags::add_string(const std::string& name, const std::string& def,
                          const std::string& help) {
  Flag f;
  f.type = Type::kString;
  f.help = help;
  f.s = def;
  flags_[name] = std::move(f);
}

void CliFlags::add_double_list(const std::string& name,
                               std::vector<double> def,
                               const std::string& help) {
  Flag f;
  f.type = Type::kDoubleList;
  f.help = help;
  f.list = std::move(def);
  flags_[name] = std::move(f);
}

bool CliFlags::set_value(Flag& flag, const std::string& value) {
  try {
    switch (flag.type) {
      case Type::kDouble:
        flag.d = std::stod(value);
        return true;
      case Type::kInt:
        flag.i = std::stoll(value);
        return true;
      case Type::kBool:
        if (value == "true" || value == "1") {
          flag.b = true;
        } else if (value == "false" || value == "0") {
          flag.b = false;
        } else {
          return false;
        }
        return true;
      case Type::kString:
        flag.s = value;
        return true;
      case Type::kDoubleList:
        flag.list = parse_double_list(value);
        return true;
    }
  } catch (const std::exception&) {
    return false;
  }
  return false;
}

bool CliFlags::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      error_ = "unexpected positional argument: " + arg;
      return false;
    }
    arg = arg.substr(2);
    std::string name = arg;
    std::optional<std::string> value;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      error_ = "unknown flag: --" + name;
      return false;
    }
    Flag& flag = it->second;
    if (!value) {
      if (flag.type == Type::kBool) {
        value = "true";  // bare --flag enables a boolean
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        error_ = "flag --" + name + " expects a value";
        return false;
      }
    }
    if (!set_value(flag, *value)) {
      error_ = "bad value for --" + name + ": " + *value;
      return false;
    }
  }
  return true;
}

const CliFlags::Flag* CliFlags::find(const std::string& name,
                                     Type type) const {
  auto it = flags_.find(name);
  if (it == flags_.end() || it->second.type != type) {
    throw std::logic_error("flag not registered with this type: " + name);
  }
  return &it->second;
}

double CliFlags::get_double(const std::string& name) const {
  return find(name, Type::kDouble)->d;
}

std::int64_t CliFlags::get_int(const std::string& name) const {
  return find(name, Type::kInt)->i;
}

bool CliFlags::get_bool(const std::string& name) const {
  return find(name, Type::kBool)->b;
}

const std::string& CliFlags::get_string(const std::string& name) const {
  return find(name, Type::kString)->s;
}

const std::vector<double>& CliFlags::get_double_list(
    const std::string& name) const {
  return find(name, Type::kDoubleList)->list;
}

bool CliFlags::require_positive(const std::string& name) {
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    throw std::logic_error("flag not registered: " + name);
  }
  const Flag& flag = it->second;
  std::ostringstream os;
  switch (flag.type) {
    case Type::kDouble:
      if (std::isfinite(flag.d) && flag.d > 0.0) return true;
      os << "--" << name << " must be a positive finite number (got "
         << flag.d << ")";
      break;
    case Type::kInt:
      if (flag.i > 0) return true;
      os << "--" << name << " must be >= 1 (got " << flag.i << ")";
      break;
    default:
      throw std::logic_error("flag is not numeric: " + name);
  }
  error_ = os.str();
  return false;
}

bool CliFlags::require_at_least(const std::string& name, std::int64_t min) {
  const Flag* flag = find(name, Type::kInt);
  if (flag->i >= min) return true;
  std::ostringstream os;
  os << "--" << name << " must be >= " << min << " (got " << flag->i << ")";
  error_ = os.str();
  return false;
}

std::string CliFlags::usage(const std::string& program) const {
  std::ostringstream os;
  os << "Usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name;
    switch (flag.type) {
      case Type::kDouble:
        os << "=<double> (default " << flag.d << ")";
        break;
      case Type::kInt:
        os << "=<int> (default " << flag.i << ")";
        break;
      case Type::kBool:
        os << " (default " << (flag.b ? "true" : "false") << ")";
        break;
      case Type::kString:
        os << "=<string> (default \"" << flag.s << "\")";
        break;
      case Type::kDoubleList: {
        os << "=<d1,d2,...> (default ";
        for (std::size_t i = 0; i < flag.list.size(); ++i) {
          if (i) os << ",";
          os << flag.list[i];
        }
        os << ")";
        break;
      }
    }
    os << "\n      " << flag.help << "\n";
  }
  return os.str();
}

}  // namespace sjs
