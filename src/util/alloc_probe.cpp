// Global operator new/delete interposition for AllocProbe. Defining these
// signatures here overrides the C++ runtime's weak definitions for every
// translation unit of the linking binary — which is exactly why this file is
// packaged as its own static library and linked only into test executables
// that want allocation accounting.
#include "util/alloc_probe.hpp"

#include <execinfo.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_count{0};
std::atomic<std::uint64_t> g_bytes{0};

// SJS_ALLOC_PROBE_TRACE=<n> in the environment: dump a raw backtrace to
// stderr for the first n allocations after each reset() — the fastest way
// to name the site behind a failing zero-allocation ratchet without a
// debugger. Read once, lazily; never allocates on the trace path itself.
int trace_budget() {
  static const int budget = [] {
    const char* env = std::getenv("SJS_ALLOC_PROBE_TRACE");
    return env != nullptr ? std::atoi(env) : 0;
  }();
  return budget;
}

std::atomic<int> g_traced{0};

void maybe_trace() noexcept {
  const int budget = trace_budget();
  if (budget <= 0) return;
  if (g_traced.fetch_add(1, std::memory_order_relaxed) >= budget) return;
  void* frames[32];
  const int n = backtrace(frames, 32);
  // backtrace_symbols allocates; backtrace_symbols_fd does not.
  backtrace_symbols_fd(frames, n, STDERR_FILENO);
  ::write(STDERR_FILENO, "----\n", 5);
}

void* counted_alloc(std::size_t size) noexcept {
  // operator new must return a distinct pointer even for size 0.
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p != nullptr) {
    g_count.fetch_add(1, std::memory_order_relaxed);
    g_bytes.fetch_add(size, std::memory_order_relaxed);
    maybe_trace();
  }
  return p;
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) noexcept {
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded == 0 ? align : rounded);
  if (p != nullptr) {
    g_count.fetch_add(1, std::memory_order_relaxed);
    g_bytes.fetch_add(size, std::memory_order_relaxed);
  }
  return p;
}

}  // namespace

namespace sjs::util {

std::uint64_t AllocProbe::count() {
  return g_count.load(std::memory_order_relaxed);
}

std::uint64_t AllocProbe::bytes() {
  return g_bytes.load(std::memory_order_relaxed);
}

void AllocProbe::reset() {
  g_count.store(0, std::memory_order_relaxed);
  g_bytes.store(0, std::memory_order_relaxed);
  g_traced.store(0, std::memory_order_relaxed);
}

}  // namespace sjs::util

// --- interposed allocation functions ----------------------------------------

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_alloc_aligned(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = counted_alloc_aligned(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
