// Small CSV writer/reader for experiment output and capacity traces.
//
// The writer escapes per RFC 4180 (quotes around fields containing commas,
// quotes, or newlines). The reader parses exactly that subset — including
// quoted fields spanning physical lines and CRLF row terminators — and is
// only used for files this library writes, so it is intentionally not a
// general parser (no configurable delimiters, comments, or encodings).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace sjs {

class CsvWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  /// Writes one row. Each field is escaped as needed.
  void write_row(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with full round-trip precision.
  void write_row_numeric(const std::vector<double>& fields);

  /// Allocation-free variant for steady-state writers (serve::Journal):
  /// formats each value with snprintf into a stack buffer and streams it
  /// straight out — no temporary vector or std::string per row. Numeric
  /// fields never need RFC 4180 escaping.
  void write_row_numeric(const double* fields, std::size_t count);

  void flush() { out_.flush(); }

  /// False once any write or flush has failed (short write, ENOSPC, closed
  /// descriptor). std::ofstream swallows I/O errors into the stream state;
  /// durability-sensitive callers (serve::Journal) must check this after
  /// flushing instead of assuming the row reached the disk.
  bool ok() const { return out_.good(); }

 private:
  std::ofstream out_;
};

/// Reads an entire CSV file into rows of fields. Throws on I/O error.
std::vector<std::vector<std::string>> read_csv(const std::string& path);

/// Escapes one CSV field per RFC 4180.
std::string csv_escape(const std::string& field);

/// Formats a double with enough digits to round-trip.
std::string format_double(double v);

}  // namespace sjs
