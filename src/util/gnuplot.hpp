// gnuplot script emission for the figure benches: each bench writes its data
// as CSV and, via this helper, a ready-to-run .gp script so
// `gnuplot fig1_chat1.0.gp` reproduces the paper-style figure with no manual
// plumbing. Kept deliberately tiny — the scripts reference the CSVs by name
// and set only the cosmetics the paper's figures use.
#pragma once

#include <string>
#include <vector>

namespace sjs {

struct GnuplotSeries {
  std::string csv_path;  ///< data file (CSV with header row)
  int x_column = 1;      ///< 1-based column indices, as gnuplot counts
  int y_column = 2;
  std::string title;
};

struct GnuplotFigure {
  std::string title;
  std::string x_label;
  std::string y_label;
  std::string output_png;  ///< empty = interactive terminal
  std::vector<GnuplotSeries> series;
};

/// Writes a gnuplot script rendering `figure` to `script_path`.
/// Throws std::runtime_error on I/O failure.
void write_gnuplot_script(const GnuplotFigure& figure,
                          const std::string& script_path);

}  // namespace sjs
