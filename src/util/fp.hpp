// Named floating-point comparison helpers.
//
// The replay-digest contract makes raw `==`/`!=` on doubles ambiguous to a
// reviewer: sometimes exact bit-equality IS the contract (event tie-breaks,
// piecewise-boundary tests, -0.0 canonicalization in the digest), and
// sometimes it is a latent determinism bug (comparing two *derived* values
// that are algebraically but not bit-wise equal). These helpers name the
// intent so `sjs_lint`'s float-eq rule can ban the raw operators outright:
//
//   exact_eq / exact_ne  — bit-for-bit comparison is the contract (both
//                          operands come from the same computation path, so
//                          equality is deterministic and meaningful)
//   is_zero              — exact test against 0.0 (sentinel/flag semantics;
//                          also true for -0.0, matching IEEE-754 ==)
//   near                 — tolerance comparison for derived quantities where
//                          exactness cannot be assumed (mixed absolute +
//                          relative epsilon)
//
// Using exact_eq on two independently-derived values is still wrong — the
// helper only makes the decision visible and greppable, it does not make it
// correct.
#pragma once

#include <algorithm>
#include <cmath>

namespace sjs::fp {

/// Default tolerance for near(): generous enough for sums of O(1e3) terms
/// of O(1e2) magnitude, far below any simulation event spacing.
inline constexpr double kDefaultEps = 1e-9;

// The raw operators below are the one sanctioned home of float equality.
// sjs-lint: allow(float-eq): these helpers ARE the sanctioned exact-compare
// primitives the rule points users at.
/// Exact (bit-level modulo -0.0==0.0) equality; use when both operands come
/// from the same computation path and exactness is the contract.
inline constexpr bool exact_eq(double a, double b) { return a == b; }

/// Negation of exact_eq.
// sjs-lint: allow(float-eq): sanctioned exact-compare primitive.
inline constexpr bool exact_ne(double a, double b) { return a != b; }

/// Exact test against zero (true for -0.0 as well).
// sjs-lint: allow(float-eq): sanctioned exact-compare primitive.
inline constexpr bool is_zero(double x) { return x == 0.0; }

/// True when |a-b| <= eps * max(1, |a|, |b|) — a mixed absolute/relative
/// tolerance suitable for derived simulation quantities.
inline bool near(double a, double b, double eps = kDefaultEps) {
  const double scale = std::max({1.0, std::abs(a), std::abs(b)});
  return std::abs(a - b) <= eps * scale;
}

}  // namespace sjs::fp
