// Minimal fixed-size thread pool for embarrassingly parallel Monte-Carlo work.
//
// Design notes (HPC idioms): tasks are submitted as std::function thunks; the
// pool is created once per experiment and joined in the destructor (RAII).
// parallel_for distributes iterations in contiguous blocks so adjacent runs
// (which touch adjacent result slots) stay on one thread — no false sharing on
// the results vector and deterministic assignment of work to indices.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sjs {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Thread-safe.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Runs body(i) for i in [0, n) across the pool, blocking until done.
/// Iterations are assigned to threads in contiguous blocks.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

}  // namespace sjs
