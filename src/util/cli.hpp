// Tiny command-line flag parser used by the benches and examples.
//
// Supports --name=value, --name value, and bare boolean --name. Unknown flags
// are an error (fail fast: a typo'd sweep parameter must not silently run the
// default experiment). Every flag is registered with a help string so each
// binary can print a usage summary with --help.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sjs {

class CliFlags {
 public:
  /// Registers flags with default values and help text.
  void add_double(const std::string& name, double def, const std::string& help);
  void add_int(const std::string& name, std::int64_t def,
               const std::string& help);
  void add_bool(const std::string& name, bool def, const std::string& help);
  void add_string(const std::string& name, const std::string& def,
                  const std::string& help);
  /// Comma-separated list of doubles, e.g. --lambda=4,5,6.
  void add_double_list(const std::string& name, std::vector<double> def,
                       const std::string& help);

  /// Parses argv. Returns false (after printing usage) for --help or on error.
  /// On error, `error()` holds a description.
  bool parse(int argc, char** argv);

  double get_double(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  bool get_bool(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;
  const std::vector<double>& get_double_list(const std::string& name) const;

  /// Post-parse validation: false (recording a message in error()) unless
  /// the named double/int flag is strictly positive; doubles must also be
  /// finite (a --accel=inf or =nan would silently wedge a clock bridge).
  bool require_positive(const std::string& name);
  /// Post-parse validation for int flags: false (recording a message in
  /// error()) unless the value is >= min. Use require_at_least(name, 0) to
  /// reject negatives on a count that may legitimately be zero.
  bool require_at_least(const std::string& name, std::int64_t min);

  const std::string& error() const { return error_; }
  std::string usage(const std::string& program) const;

 private:
  enum class Type { kDouble, kInt, kBool, kString, kDoubleList };
  struct Flag {
    Type type;
    std::string help;
    double d = 0;
    std::int64_t i = 0;
    bool b = false;
    std::string s;
    std::vector<double> list;
  };

  const Flag* find(const std::string& name, Type type) const;
  bool set_value(Flag& flag, const std::string& value);

  std::map<std::string, Flag> flags_;
  std::string error_;
};

/// Parses a comma-separated list of doubles ("1,2.5,3"). Throws
/// std::invalid_argument on malformed input.
std::vector<double> parse_double_list(const std::string& s);

}  // namespace sjs
