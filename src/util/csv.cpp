#include "util/csv.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace sjs {

std::string csv_escape(const std::string& field) {
  bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("cannot open for writing: " + path);
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row_numeric(const std::vector<double>& fields) {
  std::vector<std::string> row;
  row.reserve(fields.size());
  for (double v : fields) row.push_back(format_double(v));
  write_row(row);
}

std::vector<std::vector<std::string>> read_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::vector<std::string> fields;
    std::string field;
    bool in_quotes = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      char c = line[i];
      if (in_quotes) {
        if (c == '"') {
          if (i + 1 < line.size() && line[i + 1] == '"') {
            field += '"';
            ++i;
          } else {
            in_quotes = false;
          }
        } else {
          field += c;
        }
      } else if (c == '"') {
        in_quotes = true;
      } else if (c == ',') {
        fields.push_back(std::move(field));
        field.clear();
      } else {
        field += c;
      }
    }
    fields.push_back(std::move(field));
    rows.push_back(std::move(fields));
  }
  return rows;
}

}  // namespace sjs
