#include "util/csv.hpp"

#include <cstdio>
#include <iterator>
#include <sstream>
#include <stdexcept>

namespace sjs {

std::string csv_escape(const std::string& field) {
  bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("cannot open for writing: " + path);
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row_numeric(const std::vector<double>& fields) {
  write_row_numeric(fields.data(), fields.size());
}

void CsvWriter::write_row_numeric(const double* fields, std::size_t count) {
  char buf[32];
  for (std::size_t i = 0; i < count; ++i) {
    if (i) out_.put(',');
    const int n = std::snprintf(buf, sizeof(buf), "%.17g", fields[i]);
    out_.write(buf, n);
  }
  out_.put('\n');
}

std::vector<std::vector<std::string>> read_csv(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  const std::string data((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());

  // Character-level state machine rather than line-at-a-time: a quoted field
  // may legally contain '\n' (csv_escape produces such fields), so the
  // quoting state must survive row terminators.
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  bool row_open = false;  // consumed any character since the last terminator
  for (std::size_t i = 0; i < data.size(); ++i) {
    const char c = data[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < data.size() && data[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      in_quotes = true;
      row_open = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
      row_open = true;
    } else if (c == '\r' && (i + 1 == data.size() || data[i + 1] == '\n')) {
      // CRLF (or a trailing CR at end of file): the '\n', when present,
      // terminates the row; the CR itself is not field content.
      row_open = true;
    } else if (c == '\n') {
      fields.push_back(std::move(field));
      field.clear();
      rows.push_back(std::move(fields));
      fields.clear();
      row_open = false;
    } else {
      field += c;
      row_open = true;
    }
  }
  if (row_open || in_quotes) {  // last row lacked a trailing newline
    fields.push_back(std::move(field));
    rows.push_back(std::move(fields));
  }
  return rows;
}

}  // namespace sjs
