// Audited growth helpers for hot-path-adjacent containers.
//
// The alloc-in-hot-path lint rule flags every allocation-capable token
// reachable from a steady-state root. Most converted sites fall into two
// honest categories that are *not* steady-state allocations:
//
//   * setup-time growth — performed before the run's steady state begins
//     (engine reset, on_start, connection accept), or
//   * growth-to-high-water — an amortized geometric growth that stops once
//     the structure reaches its occupancy peak, after which clear() keeps
//     capacity and the operation never allocates again.
//
// Centralising those pushes here keeps the static report empty of audited
// noise (util/ is not a reported module) while making every such site
// greppable and reviewable in one place. The claim "never allocates in a
// warmed steady state" is not taken on faith: tests/hotpath_test.cpp pins
// it at runtime with an operator-new interposition ratchet of ZERO for both
// a warmed engine replay and a warmed serve session. Any use of these
// helpers that actually allocates per-operation in steady state fails that
// ratchet — do not reach for them to silence the linter on a genuinely
// per-operation allocation; pre-size or pool instead.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace sjs::util {

/// std::make_unique for setup-time object construction (first-use shard
/// creation, connection accept). Named distinctly so the audited escape is
/// greppable and never shadows the flagged std:: spelling.
template <typename T, typename... Args>
inline std::unique_ptr<T> alloc_unique(Args&&... args) {
  return std::make_unique<T>(std::forward<Args>(args)...);
}

/// v.push_back(x) for setup-time or growth-to-high-water appends.
template <typename T, typename U>
inline void append(std::vector<T>& v, U&& value) {
  v.push_back(std::forward<U>(value));
}

/// v.emplace_back(args...) for setup-time or growth-to-high-water appends.
template <typename T, typename... Args>
inline T& append_emplace(std::vector<T>& v, Args&&... args) {
  return v.emplace_back(std::forward<Args>(args)...);
}

/// v.resize(n) for setup-time sizing or growth-to-high-water extension.
template <typename T>
inline void grow(std::vector<T>& v, std::size_t n) {
  v.resize(n);
}

/// v.resize(n, fill) variant.
template <typename T, typename U>
inline void grow_fill(std::vector<T>& v, std::size_t n, const U& fill) {
  v.resize(n, fill);
}

/// Extends v so that index `i` is addressable (geometric under the hood via
/// resize) — the grow-on-first-contact idiom for dense id-indexed tables.
template <typename T>
inline void grow_to_index(std::vector<T>& v, std::size_t i) {
  if (i >= v.size()) v.resize(i + 1);
}

/// grow_to_index with an explicit fill value for the new tail.
template <typename T, typename U>
inline void grow_to_index_fill(std::vector<T>& v, std::size_t i,
                               const U& fill) {
  if (i >= v.size()) v.resize(i + 1, fill);
}

}  // namespace sjs::util
