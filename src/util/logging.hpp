// Lightweight leveled logging plus always-on invariant checks.
//
// SJS_CHECK is used for invariants that must hold in release builds (engine
// and scheduler state machines); it throws sjs::CheckError rather than
// aborting so tests can assert that violations are detected.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sjs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Defaults to kWarn so
/// library code is silent in benches unless asked.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Writes a formatted line to stderr if `level` passes the threshold.
void log_message(LogLevel level, const std::string& message);

/// Thrown by SJS_CHECK on invariant violation.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);
}  // namespace detail

}  // namespace sjs

// Invariant check, enabled in all build types. The streamed message is only
// evaluated on failure.
#define SJS_CHECK(expr)                                                     \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::sjs::detail::check_failed(#expr, __FILE__, __LINE__, std::string()); \
    }                                                                       \
  } while (0)

#define SJS_CHECK_MSG(expr, msg)                                        \
  do {                                                                  \
    if (!(expr)) {                                                      \
      std::ostringstream sjs_check_os_;                                 \
      sjs_check_os_ << msg;                                             \
      ::sjs::detail::check_failed(#expr, __FILE__, __LINE__,            \
                                  sjs_check_os_.str());                 \
    }                                                                   \
  } while (0)

#define SJS_LOG(level, msg)                                    \
  do {                                                         \
    if (static_cast<int>(level) >=                             \
        static_cast<int>(::sjs::log_level())) {                \
      std::ostringstream sjs_log_os_;                          \
      sjs_log_os_ << msg;                                      \
      ::sjs::log_message(level, sjs_log_os_.str());            \
    }                                                          \
  } while (0)
