// Cloud-wise scheduling extension.
//
// The paper presents V-Dover for a single server and notes (Sec. I) that
// "the same policy can be applied to the cloud-wise scheduling of secondary
// user demands on unsold cloud instances with extensions". This module is
// that extension: a fleet of servers, each with its own residual-capacity
// sample path and its own local scheduler (V-Dover by default), fronted by a
// dispatcher that assigns each secondary job to one server at release time
// (no migration — consistent with VM-shaped secondary jobs).
//
// The dispatcher is online: it may use only release-time-observable state.
// The backlog-aware policy tracks a *conservative virtual backlog* per
// server — assigned workload drained at the worst-case rate c_lo — which is
// exactly the kind of estimate V-Dover itself uses, and is computable
// without peeking into server internals:
//
//   b_s(t) = max(0, b_s(t_prev) − c_lo · (t − t_prev)),   b_s += p_i on assign.
//
// After assignment, each server is simulated exactly (the single-server
// engine), so the composition "dispatch + local V-Dover" is evaluated
// end-to-end.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "capacity/capacity_profile.hpp"
#include "jobs/instance.hpp"
#include "sched/factory.hpp"
#include "sim/result.hpp"
#include "util/rng.hpp"

namespace sjs::cloud {

enum class DispatchPolicy {
  kRoundRobin,    ///< cyclic assignment
  kRandom,        ///< uniform random server
  kLeastBacklog,  ///< smallest conservative virtual backlog (join-shortest-queue)
  kBestRate,      ///< highest *current* capacity rate at release (greedy)
  kPowerOfTwo,    ///< sample two random servers, take the lower backlog —
                  ///< near-JSQ balance with O(1) state probes (Mitzenmacher)
};

std::string to_string(DispatchPolicy policy);

struct CloudConfig {
  DispatchPolicy policy = DispatchPolicy::kLeastBacklog;
  /// Band shared by every server (the dispatcher's drain estimate uses c_lo).
  double c_lo = 1.0;
  double c_hi = 35.0;
  std::uint64_t rng_seed = 0;  ///< used by kRandom only
};

/// Assignment of each job (by position in `jobs`) to a server index.
std::vector<std::size_t> dispatch_jobs(
    const std::vector<Job>& jobs,
    const std::vector<cap::CapacityProfile>& servers,
    const CloudConfig& config);

struct CloudResult {
  std::vector<sim::SimResult> per_server;
  double completed_value = 0.0;
  double generated_value = 0.0;
  std::uint64_t completed_count = 0;
  std::uint64_t expired_count = 0;

  double value_fraction() const {
    return generated_value > 0.0 ? completed_value / generated_value : 0.0;
  }
};

/// Dispatches `jobs` across `servers` and runs each server's subset through
/// a fresh scheduler from `factory` on its own capacity path.
CloudResult run_cloud(const std::vector<Job>& jobs,
                      const std::vector<cap::CapacityProfile>& servers,
                      const CloudConfig& config,
                      const sched::NamedFactory& factory);

}  // namespace sjs::cloud
