// Global (migrating) schedulers for the multi-server engine: at every
// interrupt, the K highest-priority live jobs run, one per server — the
// multiprocessor analogues of EDF ("global EDF") and highest-value-density.
//
// Placement policy: a chosen job already executing stays put (no gratuitous
// migration); newly chosen jobs are matched to freed servers in priority
// order, fastest-current-rate server first — with heterogeneous capacity the
// most urgent job gets the fastest machine.
#pragma once

#include <set>
#include <utility>

#include "cloud/multi_engine.hpp"

namespace sjs::cloud {

enum class GlobalKey {
  kDeadline,      ///< global EDF
  kValueDensity,  ///< global HVDF (highest v/p first)
};

class GlobalKeyScheduler : public GlobalScheduler {
 public:
  explicit GlobalKeyScheduler(GlobalKey key) : key_(key) {}

  void on_release(MultiEngine& engine, JobId job) override;
  void on_complete(MultiEngine& engine, JobId job,
                   std::size_t server) override;
  void on_expire(MultiEngine& engine, JobId job, std::size_t server) override;
  std::string name() const override {
    return key_ == GlobalKey::kDeadline ? "Global-EDF" : "Global-HVDF";
  }

 private:
  double priority(const MultiEngine& engine, JobId job) const;
  /// Recomputes the top-K assignment (stable for already-placed winners).
  void reschedule(MultiEngine& engine);

  GlobalKey key_;
  /// Live jobs ordered by (priority, id) — lower is better.
  std::set<std::pair<double, JobId>> live_;
};

}  // namespace sjs::cloud
