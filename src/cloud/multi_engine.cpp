#include "cloud/multi_engine.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace sjs::cloud {

namespace {
double deadline_eps(double deadline) {
  return 1e-9 * std::max(1.0, std::abs(deadline));
}
}  // namespace

MultiEngine::MultiEngine(const std::vector<Job>& jobs,
                         std::vector<cap::CapacityProfile> servers,
                         GlobalScheduler& scheduler)
    : jobs_(&jobs), servers_(std::move(servers)), scheduler_(&scheduler) {
  SJS_CHECK_MSG(!servers_.empty(), "need at least one server");
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SJS_CHECK_MSG(jobs[i].id == static_cast<JobId>(i),
                  "jobs must be in Instance canonical form (id == position)");
    SJS_CHECK_MSG(i == 0 || jobs[i].release >= jobs[i - 1].release,
                  "jobs must be release-sorted");
  }
  running_.assign(servers_.size(), kNoJob);
  epochs_.assign(servers_.size(), 0);
  placement_.assign(jobs.size(), kNoServer);
  remaining_.resize(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    remaining_[i] = jobs[i].workload;
  }
  outcomes_.assign(jobs.size(), sim::JobOutcome::kPending);
  released_.assign(jobs.size(), false);
}

void MultiEngine::push_event(double time, EventType type, JobId jid,
                             std::size_t server, std::uint64_t epoch) {
  queue_.push(Event{time, type, next_seq_++, jid, server, epoch});
}

double MultiEngine::server_rate(std::size_t server) const {
  SJS_CHECK(server < servers_.size());
  return servers_[server].rate(now_);
}

double MultiEngine::remaining(JobId id) const {
  SJS_CHECK_MSG(is_released(id), "remaining() on unreleased job " << id);
  return remaining_[static_cast<std::size_t>(id)];
}

bool MultiEngine::is_released(JobId id) const {
  return id >= 0 && static_cast<std::size_t>(id) < released_.size() &&
         released_[static_cast<std::size_t>(id)];
}

bool MultiEngine::is_live(JobId id) const {
  return is_released(id) &&
         outcomes_[static_cast<std::size_t>(id)] == sim::JobOutcome::kPending;
}

std::size_t MultiEngine::server_of(JobId id) const {
  SJS_CHECK(id >= 0 && static_cast<std::size_t>(id) < placement_.size());
  return placement_[static_cast<std::size_t>(id)];
}

JobId MultiEngine::running_on(std::size_t server) const {
  SJS_CHECK(server < servers_.size());
  return running_[server];
}

void MultiEngine::advance_all(double t) {
  SJS_CHECK_MSG(t >= last_advance_ - 1e-12, "time moved backwards");
  t = std::max(t, last_advance_);
  if (t > last_advance_) {
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      const JobId jid = running_[s];
      if (jid == kNoJob) continue;
      const double executed = servers_[s].work(last_advance_, t);
      auto& rem = remaining_[static_cast<std::size_t>(jid)];
      rem = std::max(0.0, rem - executed);
      result_.busy_time_per_server[s] += t - last_advance_;
    }
  }
  last_advance_ = t;
}

void MultiEngine::halt_server(std::size_t server) {
  const JobId jid = running_[server];
  if (jid != kNoJob) {
    placement_[static_cast<std::size_t>(jid)] = kNoServer;
    running_[server] = kNoJob;
  }
  ++epochs_[server];
}

void MultiEngine::schedule_completion(std::size_t server) {
  const JobId jid = running_[server];
  if (jid == kNoJob) return;
  const Job& j = job(jid);
  const double completion =
      servers_[server].invert(now_, remaining_[static_cast<std::size_t>(jid)]);
  if (completion <= j.deadline + deadline_eps(j.deadline)) {
    push_event(std::min(completion, j.deadline), EventType::kCompletion, jid,
               server, epochs_[server]);
  }
}

void MultiEngine::run_on(std::size_t server, JobId id) {
  SJS_CHECK_MSG(in_callback_, "run_on() outside a scheduler callback");
  SJS_CHECK(server < servers_.size());
  SJS_CHECK_MSG(is_live(id), "run_on() with non-live job " << id);
  advance_all(now_);
  if (running_[server] == id) return;

  // Migration: stop it wherever it currently runs.
  const std::size_t current = placement_[static_cast<std::size_t>(id)];
  if (current != kNoServer) {
    trace(obs::TraceKind::kMigrate, id, server, static_cast<double>(current),
          static_cast<double>(server));
    halt_server(current);
    ++result_.migrations;
  }
  // Preempt the incumbent on the target server.
  if (running_[server] != kNoJob) {
    if (remaining_[static_cast<std::size_t>(running_[server])] > 0.0) {
      ++result_.preemptions;
      trace(obs::TraceKind::kPreempt, running_[server], server,
            remaining_[static_cast<std::size_t>(running_[server])]);
    }
    halt_server(server);
  } else {
    ++epochs_[server];
  }
  running_[server] = id;
  placement_[static_cast<std::size_t>(id)] = server;
  ++result_.dispatches;
  trace(obs::TraceKind::kDispatch, id, server,
        remaining_[static_cast<std::size_t>(id)]);
  schedule_completion(server);
}

void MultiEngine::idle(std::size_t server) {
  SJS_CHECK_MSG(in_callback_, "idle() outside a scheduler callback");
  SJS_CHECK(server < servers_.size());
  advance_all(now_);
  if (running_[server] != kNoJob &&
      remaining_[static_cast<std::size_t>(running_[server])] > 0.0) {
    ++result_.preemptions;
    trace(obs::TraceKind::kPreempt, running_[server], server,
          remaining_[static_cast<std::size_t>(running_[server])]);
  }
  halt_server(server);
  trace(obs::TraceKind::kIdle, kNoJob, server);
}

void MultiEngine::stop(JobId id) {
  SJS_CHECK_MSG(in_callback_, "stop() outside a scheduler callback");
  const std::size_t server = placement_[static_cast<std::size_t>(id)];
  if (server != kNoServer) idle(server);
}

MultiSimResult MultiEngine::run_to_completion() {
  result_ = MultiSimResult{};
  result_.scheduler_name = scheduler_->name();
  result_.busy_time_per_server.assign(servers_.size(), 0.0);
  for (const Job& j : *jobs_) {
    result_.generated_value += j.value;
    push_event(j.release, EventType::kRelease, j.id, kNoServer, 0);
    push_event(j.deadline, EventType::kExpiry, j.id, kNoServer, 0);
  }

  trace(obs::TraceKind::kRunStart, kNoJob, kNoServer,
        static_cast<double>(jobs_->size()),
        static_cast<double>(servers_.size()));

  in_callback_ = true;
  scheduler_->on_start(*this);
  in_callback_ = false;

  while (!queue_.empty()) {
    const Event event = queue_.top();
    queue_.pop();
    now_ = std::max(now_, event.time);
    advance_all(now_);
    in_callback_ = true;
    switch (event.type) {
      case EventType::kCompletion: {
        if (event.server == kNoServer ||
            event.epoch != epochs_[event.server] ||
            running_[event.server] != event.job) {
          break;  // stale
        }
        const auto idx = static_cast<std::size_t>(event.job);
        SJS_CHECK_MSG(remaining_[idx] <
                          1e-6 * std::max(1.0, job(event.job).workload),
                      "completion with work left");
        remaining_[idx] = 0.0;
        outcomes_[idx] = sim::JobOutcome::kCompleted;
        halt_server(event.server);
        result_.completed_value += job(event.job).value;
        ++result_.completed_count;
        trace(obs::TraceKind::kComplete, event.job, event.server,
              job(event.job).value);
        scheduler_->on_complete(*this, event.job, event.server);
        break;
      }
      case EventType::kExpiry: {
        const auto idx = static_cast<std::size_t>(event.job);
        if (outcomes_[idx] != sim::JobOutcome::kPending) break;
        outcomes_[idx] = sim::JobOutcome::kExpired;
        ++result_.expired_count;
        const std::size_t server = placement_[idx];
        if (server != kNoServer) halt_server(server);
        trace(obs::TraceKind::kExpire, event.job, server, remaining_[idx],
              server != kNoServer ? 1.0 : 0.0);
        scheduler_->on_expire(*this, event.job, server);
        break;
      }
      case EventType::kRelease: {
        released_[static_cast<std::size_t>(event.job)] = true;
        const Job& j = job(event.job);
        trace(obs::TraceKind::kRelease, event.job, kNoServer, j.workload,
              j.deadline);
        scheduler_->on_release(*this, event.job);
        break;
      }
    }
    in_callback_ = false;
  }

  result_.outcomes = outcomes_;
  result_.executed_work.resize(jobs_->size());
  for (std::size_t i = 0; i < jobs_->size(); ++i) {
    result_.executed_work[i] = (*jobs_)[i].workload - remaining_[i];
  }
  trace(obs::TraceKind::kRunEnd, kNoJob, kNoServer, result_.completed_value,
        result_.generated_value);
  if (sink_) sink_->flush();
  return result_;
}

}  // namespace sjs::cloud
