#include "cloud/multi_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/vec.hpp"

namespace sjs::cloud {

namespace {
double deadline_eps(double deadline) {
  return 1e-9 * std::max(1.0, std::abs(deadline));
}
}  // namespace

MultiEngine::MultiEngine(const std::vector<Job>& jobs,
                         std::vector<cap::CapacityProfile> servers,
                         GlobalScheduler& scheduler)
    : jobs_(&jobs), servers_(std::move(servers)), scheduler_(&scheduler) {
  SJS_CHECK_MSG(!servers_.empty(), "need at least one server");
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SJS_CHECK_MSG(jobs[i].id == static_cast<JobId>(i),
                  "jobs must be in Instance canonical form (id == position)");
    SJS_CHECK_MSG(i == 0 || jobs[i].release >= jobs[i - 1].release,
                  "jobs must be release-sorted");
  }
  running_.assign(servers_.size(), kNoJob);
  epochs_.assign(servers_.size(), 0);
  placement_.assign(jobs.size(), kNoServer);
  remaining_.resize(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    remaining_[i] = jobs[i].workload;
  }
  outcomes_.assign(jobs.size(), sim::JobOutcome::kPending);
  released_.assign(jobs.size(), false);
}

void MultiEngine::push_event(double time, EventType type, JobId jid,
                             std::size_t server, std::uint64_t epoch) {
  queue_.push(Event{time, type, next_seq_++, jid, server, epoch});
}

double MultiEngine::server_rate(std::size_t server) const {
  SJS_CHECK(server < servers_.size());
  return servers_[server].rate(now_);
}

double MultiEngine::remaining(JobId id) const {
  SJS_CHECK_MSG(is_released(id), "remaining() on unreleased job " << id);
  return remaining_[static_cast<std::size_t>(id)];
}

bool MultiEngine::is_released(JobId id) const {
  return id >= 0 && static_cast<std::size_t>(id) < released_.size() &&
         released_[static_cast<std::size_t>(id)];
}

bool MultiEngine::is_live(JobId id) const {
  return is_released(id) &&
         outcomes_[static_cast<std::size_t>(id)] == sim::JobOutcome::kPending;
}

std::size_t MultiEngine::server_of(JobId id) const {
  SJS_CHECK(id >= 0 && static_cast<std::size_t>(id) < placement_.size());
  return placement_[static_cast<std::size_t>(id)];
}

JobId MultiEngine::running_on(std::size_t server) const {
  SJS_CHECK(server < servers_.size());
  return running_[server];
}

void MultiEngine::advance_all(double t) {
  SJS_CHECK_MSG(t >= last_advance_ - 1e-12, "time moved backwards");
  t = std::max(t, last_advance_);
  if (t > last_advance_) {
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      const JobId jid = running_[s];
      if (jid == kNoJob) continue;
      const double executed = servers_[s].work(last_advance_, t);
      auto& rem = remaining_[static_cast<std::size_t>(jid)];
      rem = std::max(0.0, rem - executed);
      result_.busy_time_per_server[s] += t - last_advance_;
    }
  }
  last_advance_ = t;
}

void MultiEngine::halt_server(std::size_t server) {
  const JobId jid = running_[server];
  if (jid != kNoJob) {
    placement_[static_cast<std::size_t>(jid)] = kNoServer;
    running_[server] = kNoJob;
  }
  ++epochs_[server];
}

void MultiEngine::schedule_completion(std::size_t server) {
  const JobId jid = running_[server];
  if (jid == kNoJob) return;
  const Job& j = job(jid);
  const double completion =
      servers_[server].invert(now_, remaining_[static_cast<std::size_t>(jid)]);
  if (completion <= j.deadline + deadline_eps(j.deadline)) {
    push_event(std::min(completion, j.deadline), EventType::kCompletion, jid,
               server, epochs_[server]);
  }
}

void MultiEngine::run_on(std::size_t server, JobId id) {
  SJS_CHECK_MSG(in_callback_, "run_on() outside a scheduler callback");
  SJS_CHECK(server < servers_.size());
  SJS_CHECK_MSG(is_live(id), "run_on() with non-live job " << id);
  advance_all(now_);
  if (running_[server] == id) return;

  // Migration: stop it wherever it currently runs.
  const std::size_t current = placement_[static_cast<std::size_t>(id)];
  if (current != kNoServer) {
    trace(obs::TraceKind::kMigrate, id, server, static_cast<double>(current),
          static_cast<double>(server));
    halt_server(current);
    ++result_.migrations;
  }
  // Preempt the incumbent on the target server.
  if (running_[server] != kNoJob) {
    if (remaining_[static_cast<std::size_t>(running_[server])] > 0.0) {
      ++result_.preemptions;
      trace(obs::TraceKind::kPreempt, running_[server], server,
            remaining_[static_cast<std::size_t>(running_[server])]);
    }
    halt_server(server);
  } else {
    ++epochs_[server];
  }
  running_[server] = id;
  placement_[static_cast<std::size_t>(id)] = server;
  ++result_.dispatches;
  trace(obs::TraceKind::kDispatch, id, server,
        remaining_[static_cast<std::size_t>(id)]);
  schedule_completion(server);
}

void MultiEngine::idle(std::size_t server) {
  SJS_CHECK_MSG(in_callback_, "idle() outside a scheduler callback");
  SJS_CHECK(server < servers_.size());
  advance_all(now_);
  if (running_[server] != kNoJob &&
      remaining_[static_cast<std::size_t>(running_[server])] > 0.0) {
    ++result_.preemptions;
    trace(obs::TraceKind::kPreempt, running_[server], server,
          remaining_[static_cast<std::size_t>(running_[server])]);
  }
  halt_server(server);
  trace(obs::TraceKind::kIdle, kNoJob, server);
}

void MultiEngine::stop(JobId id) {
  SJS_CHECK_MSG(in_callback_, "stop() outside a scheduler callback");
  const std::size_t server = placement_[static_cast<std::size_t>(id)];
  if (server != kNoServer) idle(server);
}

void MultiEngine::process_event(const Event& event) {
  now_ = std::max(now_, event.time);
  advance_all(now_);
  in_callback_ = true;
  switch (event.type) {
    case EventType::kCompletion: {
      if (event.server == kNoServer || event.epoch != epochs_[event.server] ||
          running_[event.server] != event.job) {
        break;  // stale
      }
      const auto idx = static_cast<std::size_t>(event.job);
      SJS_CHECK_MSG(remaining_[idx] <
                        1e-6 * std::max(1.0, job(event.job).workload),
                    "completion with work left");
      remaining_[idx] = 0.0;
      outcomes_[idx] = sim::JobOutcome::kCompleted;
      result_.completion_times[idx] = now_;
      halt_server(event.server);
      result_.completed_value += job(event.job).value;
      ++result_.completed_count;
      trace(obs::TraceKind::kComplete, event.job, event.server,
            job(event.job).value);
      scheduler_->on_complete(*this, event.job, event.server);
      break;
    }
    case EventType::kExpiry: {
      const auto idx = static_cast<std::size_t>(event.job);
      if (outcomes_[idx] != sim::JobOutcome::kPending) break;
      outcomes_[idx] = sim::JobOutcome::kExpired;
      ++result_.expired_count;
      const std::size_t server = placement_[idx];
      if (server != kNoServer) halt_server(server);
      trace(obs::TraceKind::kExpire, event.job, server, remaining_[idx],
            server != kNoServer ? 1.0 : 0.0);
      scheduler_->on_expire(*this, event.job, server);
      break;
    }
    case EventType::kRelease: {
      released_[static_cast<std::size_t>(event.job)] = true;
      const Job& j = job(event.job);
      trace(obs::TraceKind::kRelease, event.job, kNoServer, j.workload,
            j.deadline);
      scheduler_->on_release(*this, event.job);
      break;
    }
  }
  in_callback_ = false;
}

void MultiEngine::harvest() {
  result_.outcomes = outcomes_;
  result_.executed_work.resize(jobs_->size());
  for (std::size_t i = 0; i < jobs_->size(); ++i) {
    result_.executed_work[i] = (*jobs_)[i].workload - remaining_[i];
  }
  trace(obs::TraceKind::kRunEnd, kNoJob, kNoServer, result_.completed_value,
        result_.generated_value);
  if (sink_) sink_->flush();
}

MultiSimResult MultiEngine::run_to_completion() {
  SJS_CHECK_MSG(!live_, "run_to_completion during a live session");
  result_ = MultiSimResult{};
  result_.scheduler_name = scheduler_->name();
  result_.busy_time_per_server.assign(servers_.size(), 0.0);
  result_.completion_times.assign(jobs_->size(),
                                  std::numeric_limits<double>::quiet_NaN());
  for (const Job& j : *jobs_) {
    result_.generated_value += j.value;
    push_event(j.release, EventType::kRelease, j.id, kNoServer, 0);
    push_event(j.deadline, EventType::kExpiry, j.id, kNoServer, 0);
  }

  trace(obs::TraceKind::kRunStart, kNoJob, kNoServer,
        static_cast<double>(jobs_->size()),
        static_cast<double>(servers_.size()));

  in_callback_ = true;
  scheduler_->on_start(*this);
  in_callback_ = false;

  while (!queue_.empty()) {
    const Event event = queue_.top();
    queue_.pop();
    process_event(event);
  }

  harvest();
  return result_;
}

// --- Live mode (real-time admission serving) --------------------------------

void MultiEngine::begin_live() {
  SJS_CHECK_MSG(!live_ && !in_callback_, "begin_live: already live");
  live_ = true;
  result_ = MultiSimResult{};
  result_.scheduler_name = scheduler_->name();
  result_.busy_time_per_server.assign(servers_.size(), 0.0);
  result_.completion_times.assign(jobs_->size(),
                                  std::numeric_limits<double>::quiet_NaN());
  // A live session normally starts empty, but admit any pre-loaded jobs so a
  // warm-started fleet behaves like the equivalent replay.
  for (const Job& j : *jobs_) {
    result_.generated_value += j.value;
    push_event(j.release, EventType::kRelease, j.id, kNoServer, 0);
    push_event(j.deadline, EventType::kExpiry, j.id, kNoServer, 0);
  }
  trace(obs::TraceKind::kRunStart, kNoJob, kNoServer,
        static_cast<double>(jobs_->size()),
        static_cast<double>(servers_.size()));
  in_callback_ = true;
  scheduler_->on_start(*this);
  in_callback_ = false;
}

void MultiEngine::reserve_live(std::size_t max_in_flight) {
  placement_.reserve(max_in_flight);
  remaining_.reserve(max_in_flight);
  outcomes_.reserve(max_in_flight);
  released_.reserve(max_in_flight);
  result_.completion_times.reserve(max_in_flight);
}

void MultiEngine::admit_live(JobId id) {
  SJS_CHECK_MSG(live_ && !in_callback_, "admit_live outside live mode");
  SJS_CHECK_MSG(static_cast<std::size_t>(id) == placement_.size(),
                "admit_live out of order: job " << id << ", expected "
                    << placement_.size());
  SJS_CHECK_MSG(static_cast<std::size_t>(id) < jobs_->size(),
                "admit_live before the job was appended");
  const Job& j = job(id);
  SJS_CHECK_MSG(j.id == id, "job id out of sync with its position");
  SJS_CHECK_MSG(j.release >= now_ - 1e-12,
                "admit_live in the past: release " << j.release << " < now "
                    << now_);
  // Dense append: live ids stay == admission order, exactly as the replayed
  // Instance canonical form requires. Release-then-expiry push order per job
  // matches run_to_completion's loop, so relative seq order within every
  // (time, type) class — the only thing the tie-break reads — is identical.
  util::append(placement_, kNoServer);
  util::append(remaining_, j.workload);
  util::append(outcomes_, sim::JobOutcome::kPending);
  released_.push_back(false);
  result_.generated_value += j.value;
  util::append(result_.completion_times,
               std::numeric_limits<double>::quiet_NaN());
  push_event(j.release, EventType::kRelease, id, kNoServer, 0);
  push_event(j.deadline, EventType::kExpiry, id, kNoServer, 0);
}

bool MultiEngine::cancel_live(JobId id) {
  SJS_CHECK_MSG(live_ && !in_callback_, "cancel_live outside live mode");
  if (!is_live(id)) return false;
  // Deliver an ordinary expiry interrupt at the current instant; the job's
  // original expiry event stays queued and later pops as a no-op.
  advance_all(now_);
  process_event(Event{now_, EventType::kExpiry, next_seq_++, id, kNoServer, 0});
  return true;
}

void MultiEngine::advance_to(double t) {
  SJS_CHECK_MSG(live_ && !in_callback_, "advance_to outside live mode");
  SJS_CHECK_MSG(t >= now_ - 1e-12,
                "advance_to moving backwards: " << t << " < " << now_);
  while (!queue_.empty() && queue_.top().time < t) {
    const Event event = queue_.top();
    queue_.pop();
    process_event(event);
  }
  now_ = std::max(now_, t);
  // last_advance_ deliberately stays at the last processed event: execution
  // integrals must be subdivided at event times only, exactly as replay
  // subdivides them, or remaining workloads drift by ulps.
}

double MultiEngine::next_event_time() const {
  if (queue_.empty()) return std::numeric_limits<double>::infinity();
  return queue_.top().time;
}

const MultiSimResult& MultiEngine::finish_live() {
  SJS_CHECK_MSG(live_ && !in_callback_, "finish_live outside live mode");
  while (!queue_.empty()) {
    const Event event = queue_.top();
    queue_.pop();
    process_event(event);
  }
  harvest();
  live_ = false;
  return result_;
}

sim::JobOutcome MultiEngine::outcome(JobId id) const {
  SJS_CHECK(id >= 0 && static_cast<std::size_t>(id) < outcomes_.size());
  return outcomes_[static_cast<std::size_t>(id)];
}

void save_multi_outcomes_csv(const MultiSimResult& result,
                             const std::vector<Job>& jobs,
                             const std::string& path) {
  CsvWriter w(path);
  w.write_row({"id", "outcome", "completion", "value_collected"});
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    const char* outcome = "pending";
    double collected = 0.0;
    std::string completion;
    if (result.outcomes[i] == sim::JobOutcome::kCompleted) {
      outcome = "completed";
      collected = i < jobs.size() ? jobs[i].value : 0.0;
      if (i < result.completion_times.size() &&
          !std::isnan(result.completion_times[i])) {
        completion = format_double(result.completion_times[i]);
      }
    } else if (result.outcomes[i] == sim::JobOutcome::kExpired) {
      outcome = "expired";
    }
    w.write_row({std::to_string(i), outcome, completion,
                 format_double(collected)});
  }
}

}  // namespace sjs::cloud
