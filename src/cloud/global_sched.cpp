#include "cloud/global_sched.hpp"

#include <algorithm>
#include <vector>

namespace sjs::cloud {

double GlobalKeyScheduler::priority(const MultiEngine& engine,
                                    JobId job) const {
  const Job& j = engine.job(job);
  // Lower is better; negate density so higher density sorts first.
  return key_ == GlobalKey::kDeadline ? j.deadline : -j.value_density();
}

void GlobalKeyScheduler::reschedule(MultiEngine& engine) {
  const std::size_t k = engine.server_count();

  // The top-K live jobs by priority.
  std::vector<JobId> chosen;
  chosen.reserve(k);
  for (const auto& [prio, job] : live_) {
    if (chosen.size() == k) break;
    chosen.push_back(job);
  }

  // Assign in priority order: each winner takes the fastest still-available
  // server, *staying put when its current server ties the maximum* (no
  // gratuitous migration among equal machines). run_on handles everything:
  // placing a queued job, preempting a lower-priority incumbent, and
  // migrating a running winner onto a faster machine.
  std::vector<bool> available(k, true);
  for (JobId job : chosen) {
    std::size_t best = kNoServer;
    for (std::size_t s = 0; s < k; ++s) {
      if (!available[s]) continue;
      if (best == kNoServer ||
          engine.server_rate(s) > engine.server_rate(best)) {
        best = s;
      }
    }
    const std::size_t current = engine.server_of(job);
    std::size_t target = best;
    if (current != kNoServer && available[current] &&
        engine.server_rate(current) >= engine.server_rate(best)) {
      target = current;
    }
    available[target] = false;
    if (current != target) engine.run_on(target, job);
  }
  // Any remaining server still executing a non-winner goes idle.
  for (std::size_t s = 0; s < k; ++s) {
    if (available[s] && engine.running_on(s) != kNoJob) {
      engine.idle(s);
    }
  }
}

void GlobalKeyScheduler::on_release(MultiEngine& engine, JobId job) {
  live_.emplace(priority(engine, job), job);
  reschedule(engine);
}

void GlobalKeyScheduler::on_complete(MultiEngine& engine, JobId job,
                                     std::size_t /*server*/) {
  live_.erase({priority(engine, job), job});
  reschedule(engine);
}

void GlobalKeyScheduler::on_expire(MultiEngine& engine, JobId job,
                                   std::size_t /*server*/) {
  live_.erase({priority(engine, job), job});
  reschedule(engine);
}

}  // namespace sjs::cloud
