// Coupled multi-server engine with migration — the full "cloud-wise"
// extension (paper Sec. I), beyond the dispatch-only model in dispatch.hpp.
//
// K servers, each with its own piecewise-constant capacity path, execute one
// shared secondary-job stream under a *global* scheduler that may place,
// preempt, and migrate any live job onto any server at any interrupt. A
// migrated job resumes from its point of preemption (preemption and
// migration are free, consistent with the single-server model's free
// preemption; real VM-migration costs can be modelled by the workload).
// A job occupies at most one server at a time (no intra-job parallelism —
// these are VMs).
//
// The engine mirrors sim::Engine's guarantees: exact completion instants per
// server via cumulative-work inversion, deterministic event ordering
// (Completion < Expiry < Release, FIFO within class), lazy invalidation via
// per-server dispatch epochs, and online information hiding.
#pragma once

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "capacity/capacity_profile.hpp"
#include "jobs/job.hpp"
#include "obs/trace_sink.hpp"
#include "sim/result.hpp"
#include "util/fp.hpp"

namespace sjs::cloud {

inline constexpr std::size_t kNoServer = static_cast<std::size_t>(-1);

class MultiEngine;

/// Global scheduler interface: sees every server, may run any live job on
/// any server inside a callback.
class GlobalScheduler {
 public:
  virtual ~GlobalScheduler() = default;
  virtual void on_start(MultiEngine& /*engine*/) {}
  virtual void on_release(MultiEngine& engine, JobId job) = 0;
  virtual void on_complete(MultiEngine& engine, JobId job,
                           std::size_t server) = 0;
  /// `server` is kNoServer when the job expired while not running.
  virtual void on_expire(MultiEngine& engine, JobId job,
                         std::size_t server) = 0;
  virtual std::string name() const = 0;
};

struct MultiSimResult {
  std::string scheduler_name;
  double completed_value = 0.0;
  double generated_value = 0.0;
  std::uint64_t completed_count = 0;
  std::uint64_t expired_count = 0;
  std::uint64_t dispatches = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t migrations = 0;  ///< dispatches onto a different server
  std::vector<sim::JobOutcome> outcomes;
  std::vector<double> executed_work;
  std::vector<double> completion_times;  ///< NaN while pending/expired
  std::vector<double> busy_time_per_server;

  // Fleet-rental accounting (filled by cluster::Dispatcher-driven runs;
  // zero for plain MultiEngine runs).
  double rental_cost = 0.0;          ///< integral of cost_rate over rented time
  double rented_machine_time = 0.0;  ///< integral of rented-machine count
  std::uint64_t rent_events = 0;
  std::uint64_t release_events = 0;
  std::uint64_t rented_peak = 0;  ///< max machines rented at once

  double value_fraction() const {
    return generated_value > 0.0 ? completed_value / generated_value : 0.0;
  }
};

/// Writes the per-job outcome table in the exact byte format of
/// sim::save_outcomes_csv ("id,outcome,completion,value_collected", %.17g) so
/// a live cluster session and its replay can be diffed byte-for-byte.
void save_multi_outcomes_csv(const MultiSimResult& result,
                             const std::vector<Job>& jobs,
                             const std::string& path);

class MultiEngine {
 public:
  /// Jobs must be release-sorted with ids equal to their positions (the
  /// Instance canonical form); servers must be non-empty. Neither the jobs
  /// nor the scheduler are owned.
  MultiEngine(const std::vector<Job>& jobs,
              std::vector<cap::CapacityProfile> servers,
              GlobalScheduler& scheduler);

  MultiSimResult run_to_completion();

  // --- live mode (real-time admission serving; mirrors sim::Engine) ---
  /// Enters live mode: no pre-loaded events beyond jobs already present in
  /// the backing vector (a warm-started fleet behaves like its replay).
  void begin_live();
  /// Pre-sizes per-job tables for a bounded-in-flight session.
  void reserve_live(std::size_t max_in_flight);
  /// Registers the job at `id` (must already be appended to the backing jobs
  /// vector, dense id == position, release >= now). Pushes its release and
  /// expiry events exactly as replay does, so relative event order — and
  /// therefore every outcome byte — matches the replayed session.
  void admit_live(JobId id);
  /// Force-expires a live job at the current instant. Subdivides the running
  /// job's execution integral at now(), so cancel-bearing sessions are
  /// excluded from the bit-exact replay guarantee (same caveat as
  /// sim::Engine::cancel_live).
  bool cancel_live(JobId id);
  /// Processes every event strictly before t, then moves the clock to t.
  /// Execution integrals are subdivided at event times only, exactly as
  /// replay subdivides them, or remaining workloads drift by ulps.
  void advance_to(double t);
  /// Time of the earliest pending event, or +inf when idle.
  double next_event_time() const;
  /// Drains all pending events and harvests the result.
  const MultiSimResult& finish_live();
  bool live_mode() const { return live_; }
  /// Outcome of an admitted job (pending/completed/expired).
  sim::JobOutcome outcome(JobId id) const;

  /// Attaches a trace sink (src/obs/); events carry the server index in
  /// TraceEvent::server and migrations are recorded as kMigrate. Same
  /// contract as sim::Engine::attach_trace.
  void attach_trace(obs::TraceSink* sink) { sink_ = sink; }
  bool trace_enabled() const { return sink_ != nullptr; }

  // --- query surface (online-observable) ---
  double now() const { return now_; }
  std::size_t server_count() const { return servers_.size(); }
  double server_rate(std::size_t server) const;
  const Job& job(JobId id) const { return (*jobs_)[static_cast<std::size_t>(id)]; }
  std::size_t job_count() const { return jobs_->size(); }
  double remaining(JobId id) const;
  bool is_live(JobId id) const;
  bool is_released(JobId id) const;
  /// Server currently executing `id`, or kNoServer.
  std::size_t server_of(JobId id) const;
  /// Job running on `server`, or kNoJob.
  JobId running_on(std::size_t server) const;

  // --- commands (valid inside callbacks only) ---
  /// Places `id` on `server`, preempting whatever runs there. If `id` is
  /// running elsewhere it is migrated (stopped there first). No-op if it
  /// already runs on `server`.
  void run_on(std::size_t server, JobId id);
  /// Idles `server`.
  void idle(std::size_t server);
  /// Stops `id` wherever it runs (no-op if queued).
  void stop(JobId id);

 private:
  enum class EventType : std::uint8_t {
    kCompletion = 0,
    kExpiry = 1,
    kRelease = 2,
  };

  struct Event {
    double time;
    EventType type;
    std::uint64_t seq;
    JobId job;
    std::size_t server = kNoServer;
    std::uint64_t epoch = 0;

    bool operator>(const Event& other) const {
      if (fp::exact_ne(time, other.time)) return time > other.time;
      if (type != other.type) return type > other.type;
      return seq > other.seq;
    }
  };

  /// Records one trace event at `now_` (null check only when disabled).
  void trace(obs::TraceKind kind, JobId job, std::size_t server,
             double a = 0.0, double b = 0.0) {
    if (sink_) {
      sink_->record(obs::TraceEvent{
          now_, kind, job,
          server == kNoServer ? -1 : static_cast<std::int32_t>(server), a, b});
    }
  }

  void push_event(double time, EventType type, JobId job, std::size_t server,
                  std::uint64_t epoch);
  /// Accounts execution on every busy server up to time t.
  void advance_all(double t);
  /// Bookkeeping stop of the job on `server` (no callback).
  void halt_server(std::size_t server);
  void schedule_completion(std::size_t server);
  /// Pops and dispatches one event (shared by replay and live mode).
  void process_event(const Event& event);
  /// Copies outcome tables into result_ and closes the trace stream.
  void harvest();

  const std::vector<Job>* jobs_;
  std::vector<cap::CapacityProfile> servers_;
  GlobalScheduler* scheduler_;

  double now_ = 0.0;
  double last_advance_ = 0.0;
  std::vector<JobId> running_;          // per server
  std::vector<std::uint64_t> epochs_;   // per server
  std::vector<std::size_t> placement_;  // per job: server or kNoServer
  std::vector<double> remaining_;
  std::vector<sim::JobOutcome> outcomes_;
  std::vector<bool> released_;

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::uint64_t next_seq_ = 0;
  bool in_callback_ = false;
  bool live_ = false;
  obs::TraceSink* sink_ = nullptr;
  MultiSimResult result_;
};

}  // namespace sjs::cloud
