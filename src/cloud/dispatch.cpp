#include "cloud/dispatch.hpp"

#include <algorithm>

#include "sim/engine.hpp"
#include "util/logging.hpp"

namespace sjs::cloud {

std::string to_string(DispatchPolicy policy) {
  switch (policy) {
    case DispatchPolicy::kRoundRobin:
      return "round-robin";
    case DispatchPolicy::kRandom:
      return "random";
    case DispatchPolicy::kLeastBacklog:
      return "least-backlog";
    case DispatchPolicy::kBestRate:
      return "best-rate";
    case DispatchPolicy::kPowerOfTwo:
      return "power-of-two";
  }
  return "?";
}

std::vector<std::size_t> dispatch_jobs(
    const std::vector<Job>& jobs,
    const std::vector<cap::CapacityProfile>& servers,
    const CloudConfig& config) {
  SJS_CHECK_MSG(!servers.empty(), "cloud needs at least one server");
  SJS_CHECK(config.c_lo > 0.0);

  // Jobs must be visited in release order for the online state to be causal.
  std::vector<std::size_t> order(jobs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return jobs[a].release < jobs[b].release;
                   });

  std::vector<std::size_t> assignment(jobs.size(), 0);
  std::vector<double> backlog(servers.size(), 0.0);
  double last_time = 0.0;
  std::size_t cursor = 0;  // round-robin state
  Rng rng(config.rng_seed);

  for (std::size_t idx : order) {
    const Job& job = jobs[idx];
    // Drain the conservative backlogs to the current release instant.
    const double elapsed = job.release - last_time;
    for (double& b : backlog) b = std::max(0.0, b - config.c_lo * elapsed);
    last_time = job.release;

    std::size_t chosen = 0;
    switch (config.policy) {
      case DispatchPolicy::kRoundRobin:
        chosen = cursor;
        cursor = (cursor + 1) % servers.size();
        break;
      case DispatchPolicy::kRandom:
        chosen = static_cast<std::size_t>(rng.below(servers.size()));
        break;
      case DispatchPolicy::kLeastBacklog: {
        chosen = 0;
        for (std::size_t s = 1; s < servers.size(); ++s) {
          if (backlog[s] < backlog[chosen]) chosen = s;
        }
        break;
      }
      case DispatchPolicy::kPowerOfTwo: {
        const auto a = static_cast<std::size_t>(rng.below(servers.size()));
        auto b = static_cast<std::size_t>(rng.below(servers.size()));
        if (servers.size() > 1) {
          while (b == a) b = static_cast<std::size_t>(rng.below(servers.size()));
        }
        chosen = backlog[a] <= backlog[b] ? a : b;
        break;
      }
      case DispatchPolicy::kBestRate: {
        // The instantaneous rate at the release instant is observable online.
        chosen = 0;
        double best = servers[0].rate(job.release);
        for (std::size_t s = 1; s < servers.size(); ++s) {
          const double r = servers[s].rate(job.release);
          if (r > best) {
            best = r;
            chosen = s;
          }
        }
        break;
      }
    }
    assignment[idx] = chosen;
    backlog[chosen] += job.workload;
  }
  return assignment;
}

CloudResult run_cloud(const std::vector<Job>& jobs,
                      const std::vector<cap::CapacityProfile>& servers,
                      const CloudConfig& config,
                      const sched::NamedFactory& factory) {
  const auto assignment = dispatch_jobs(jobs, servers, config);

  CloudResult result;
  result.per_server.reserve(servers.size());
  for (std::size_t s = 0; s < servers.size(); ++s) {
    std::vector<Job> subset;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (assignment[i] == s) subset.push_back(jobs[i]);
    }
    Instance instance(std::move(subset), servers[s], config.c_lo,
                      config.c_hi);
    auto scheduler = factory.make();
    sim::Engine engine(instance, *scheduler);
    auto server_result = engine.run_to_completion();
    result.completed_value += server_result.completed_value;
    result.generated_value += server_result.generated_value;
    result.completed_count += server_result.completed_count;
    result.expired_count += server_result.expired_count;
    result.per_server.push_back(std::move(server_result));
  }
  return result;
}

}  // namespace sjs::cloud
