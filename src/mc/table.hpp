// Table-I-style reporting: for each λ, the captured-value percentage per
// scheduler, the best Dover column, and V-Dover's relative gain — the exact
// row layout of the paper's Table I, plus a plain-text renderer and CSV dump.
#pragma once

#include <string>
#include <vector>

#include "mc/monte_carlo.hpp"

namespace sjs::mc {

struct TableRow {
  double lambda = 0.0;
  std::vector<double> percent;      ///< captured value %, per scheduler
  std::vector<double> ci95;         ///< ± half-width, per scheduler
  int best_dover_index = -1;        ///< argmax over the Dover columns
  double vdover_percent = 0.0;
  double best_dover_percent = 0.0;
  double gain_percent = 0.0;        ///< 100·(vdover/best_dover − 1)
};

struct Table {
  std::vector<std::string> scheduler_names;
  int vdover_index = -1;            ///< column holding V-Dover
  std::vector<TableRow> rows;

  std::string render(bool show_ci = false) const;
  void save_csv(const std::string& path) const;
};

/// Builds a row from one Monte-Carlo outcome. `vdover_index` marks which
/// column is V-Dover; every other column whose name starts with "Dover"
/// participates in the best-Dover max.
TableRow make_row(double lambda, const McOutcome& outcome, int vdover_index);

}  // namespace sjs::mc
