#include "mc/monte_carlo.hpp"

#include <optional>

#include "obs/digest.hpp"
#include "sim/engine.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"

namespace sjs::mc {

sim::SimResult simulate_one(const gen::PaperSetup& setup, std::uint64_t seed,
                            std::uint64_t run, const sched::NamedFactory& f) {
  Rng rng(seed, run);
  const Instance instance = gen::generate_paper_instance(setup, rng);
  auto scheduler = f.make();
  sim::Engine engine(instance, *scheduler);
  return engine.run_to_completion();
}

void save_runs_csv(const McOutcome& outcome, const std::string& path) {
  CsvWriter writer(path);
  std::vector<std::string> header{"run"};
  for (const auto& agg : outcome.per_scheduler) header.push_back(agg.name);
  writer.write_row(header);
  for (std::size_t run = 0; run < outcome.config.runs; ++run) {
    std::vector<double> row{static_cast<double>(run)};
    for (const auto& agg : outcome.per_scheduler) {
      row.push_back(agg.value_fractions[run]);
    }
    writer.write_row_numeric(row);
  }
}

McOutcome run_monte_carlo(const McConfig& config,
                          const std::vector<sched::NamedFactory>& factories) {
  SJS_CHECK(config.runs > 0);
  SJS_CHECK(!factories.empty());

  McOutcome outcome;
  outcome.config = config;
  outcome.per_scheduler.resize(factories.size());
  for (std::size_t s = 0; s < factories.size(); ++s) {
    auto& agg = outcome.per_scheduler[s];
    agg.name = factories[s].name;
    agg.value_fractions.resize(config.runs);
    if (config.keep_traces) agg.traces.resize(config.runs);
  }

  // One task per run: each task regenerates its instance once and plays it
  // through every scheduler (common random numbers across schedulers).
  // Digests land in run-indexed slots so the combined fold below is
  // independent of which thread simulated which run.
  std::vector<std::vector<sim::SimResult>> results(config.runs);
  std::vector<std::vector<std::uint64_t>> digests(
      config.compute_digests ? config.runs : 0);
  ThreadPool pool(config.threads);
  parallel_for(pool, config.runs, [&](std::size_t run) {
    Rng rng(config.seed, run);
    const Instance instance = gen::generate_paper_instance(config.setup, rng);
    auto& row = results[run];
    row.reserve(factories.size());
    for (std::size_t s = 0; s < factories.size(); ++s) {
      auto scheduler = factories[s].make();
      sim::Engine engine(instance, *scheduler);
      obs::DigestSink digest;
      std::optional<obs::TraceMetricsBridge> bridge;
      obs::TeeSink tee;
      if (config.compute_digests) tee.add(&digest);
      if (config.metrics) {
        bridge.emplace(config.metrics->local());
        tee.add(&*bridge);
      }
      if (tee.sink_count() > 0) engine.attach_trace(&tee);
      row.push_back(engine.run_to_completion());
      if (config.compute_digests) digests[run].push_back(digest.digest());
    }
  });

  for (std::size_t s = 0; s < factories.size(); ++s) {
    auto& agg = outcome.per_scheduler[s];
    if (config.compute_digests) agg.run_digests.resize(config.runs);
    double completed = 0.0;
    double expired = 0.0;
    double preemptions = 0.0;
    for (std::size_t run = 0; run < config.runs; ++run) {
      sim::SimResult& r = results[run][s];
      agg.value_fractions[run] = r.value_fraction();
      completed += static_cast<double>(r.completed_count);
      expired += static_cast<double>(r.expired_count);
      preemptions += static_cast<double>(r.preemptions);
      if (config.keep_traces) agg.traces[run] = std::move(r.value_trace);
      if (config.compute_digests) agg.run_digests[run] = digests[run][s];
    }
    if (config.compute_digests) {
      agg.combined_digest = obs::combine_digests(agg.run_digests);
    }
    const double n = static_cast<double>(config.runs);
    agg.mean_completed = completed / n;
    agg.mean_expired = expired / n;
    agg.mean_preemptions = preemptions / n;
    agg.fraction_summary = summarize(agg.value_fractions);
  }
  return outcome;
}

}  // namespace sjs::mc
