#include "mc/monte_carlo.hpp"

#include <optional>

#include "obs/digest.hpp"
#include "sim/engine.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"

namespace sjs::mc {

sim::SimResult simulate_one(const gen::PaperSetup& setup, std::uint64_t seed,
                            std::uint64_t run, const sched::NamedFactory& f) {
  Rng rng(seed, run);
  const Instance instance = gen::generate_paper_instance(setup, rng);
  auto scheduler = f.make();
  sim::Engine engine(instance, *scheduler);
  return engine.run_to_completion();
}

void save_runs_csv(const McOutcome& outcome, const std::string& path) {
  CsvWriter writer(path);
  std::vector<std::string> header{"run"};
  for (const auto& agg : outcome.per_scheduler) header.push_back(agg.name);
  writer.write_row(header);
  for (std::size_t run = 0; run < outcome.config.runs; ++run) {
    // The run id is an integer key, not a measurement: emit it as one so
    // downstream tooling joins on "3", not "3.000000".
    std::vector<std::string> row{std::to_string(run)};
    for (const auto& agg : outcome.per_scheduler) {
      row.push_back(format_double(agg.value_fractions[run]));
    }
    writer.write_row(row);
  }
}

McOutcome run_monte_carlo(const McConfig& config,
                          const std::vector<sched::NamedFactory>& factories) {
  SJS_CHECK(config.runs > 0);
  SJS_CHECK(!factories.empty());

  McOutcome outcome;
  outcome.config = config;
  outcome.per_scheduler.resize(factories.size());
  for (std::size_t s = 0; s < factories.size(); ++s) {
    auto& agg = outcome.per_scheduler[s];
    agg.name = factories[s].name;
    agg.value_fractions.resize(config.runs);
    if (config.keep_traces) agg.traces.resize(config.runs);
  }

  // One task per run: each task regenerates its instance once and plays it
  // through every scheduler (common random numbers across schedulers) on ONE
  // engine, reset between cells — the remaining/outcome tables, event heap,
  // and timer slab are allocated once per run instead of once per cell.
  // Digests land in run-indexed slots so the combined fold below is
  // independent of which thread simulated which run.
  std::vector<std::vector<sim::SimResult>> results(config.runs);
  std::vector<std::vector<std::uint64_t>> digests(
      config.compute_digests ? config.runs : 0);
  ThreadPool pool(config.threads);
  parallel_for(pool, config.runs, [&](std::size_t run) {
    Rng rng(config.seed, run);
    const Instance instance = gen::generate_paper_instance(config.setup, rng);
    auto& row = results[run];
    row.reserve(factories.size());
    std::optional<sim::Engine> engine;
    for (std::size_t s = 0; s < factories.size(); ++s) {
      auto scheduler = factories[s].make();
      if (engine) {
        engine->reset(*scheduler);
      } else {
        engine.emplace(instance, *scheduler);
      }
      obs::DigestSink digest;
      std::optional<obs::TraceMetricsBridge> bridge;
      obs::TeeSink tee;
      if (config.compute_digests) tee.add(&digest);
      if (config.metrics) {
        bridge.emplace(config.metrics->local());
        tee.add(&*bridge);
      }
      engine->attach_trace(tee.sink_count() > 0 ? &tee : nullptr);
      row.push_back(engine->run_to_completion());
      if (config.compute_digests) digests[run].push_back(digest.digest());
      if (config.metrics) {
        auto& shard = config.metrics->local();
        const sim::SimResult& r = row.back();
        shard.set_gauge(obs::kGaugeTimerSlabPeak,
                        static_cast<double>(r.timer_slab_peak));
        shard.set_gauge(obs::kGaugeTimerSlabSlots,
                        static_cast<double>(r.timer_slab_slots));
        shard.set_gauge(obs::kGaugeJobSlabPeak,
                        static_cast<double>(r.job_slab_peak));
        shard.set_gauge(obs::kGaugeJobSlabSlots,
                        static_cast<double>(r.job_slab_slots));
        shard.set_gauge(obs::kGaugeEventHeapPeak,
                        static_cast<double>(r.event_heap_peak));
        shard.set_gauge(obs::kGaugeEventHeapDeadPeak,
                        static_cast<double>(r.event_heap_dead_peak));
        shard.count(obs::kCounterTimersArmed,
                    static_cast<double>(r.timers_armed));
        shard.count(obs::kCounterHeapCompactions,
                    static_cast<double>(r.heap_compactions));
        shard.count(obs::kCounterTimerCascades,
                    static_cast<double>(r.timer_cascades));
        shard.count(obs::kCounterTimerCascadeEntries,
                    static_cast<double>(r.timer_cascade_entries));
        shard.set_gauge(obs::kGaugeTimerBucketPeak,
                        static_cast<double>(r.timer_bucket_peak));
        shard.set_gauge(obs::kGaugeQueuePeak,
                        static_cast<double>(r.queue_peak));
        shard.set_gauge(obs::kGaugeQueueSlots,
                        static_cast<double>(r.queue_slots));
      }
    }
  });

  for (std::size_t s = 0; s < factories.size(); ++s) {
    auto& agg = outcome.per_scheduler[s];
    if (config.compute_digests) agg.run_digests.resize(config.runs);
    double completed = 0.0;
    double expired = 0.0;
    double preemptions = 0.0;
    for (std::size_t run = 0; run < config.runs; ++run) {
      sim::SimResult& r = results[run][s];
      agg.value_fractions[run] = r.value_fraction();
      completed += static_cast<double>(r.completed_count);
      expired += static_cast<double>(r.expired_count);
      preemptions += static_cast<double>(r.preemptions);
      if (config.keep_traces) agg.traces[run] = std::move(r.value_trace);
      if (config.compute_digests) agg.run_digests[run] = digests[run][s];
    }
    if (config.compute_digests) {
      agg.combined_digest = obs::combine_digests(agg.run_digests);
    }
    const double n = static_cast<double>(config.runs);
    agg.mean_completed = completed / n;
    agg.mean_expired = expired / n;
    agg.mean_preemptions = preemptions / n;
    agg.fraction_summary = summarize(agg.value_fractions);
  }
  return outcome;
}

}  // namespace sjs::mc
