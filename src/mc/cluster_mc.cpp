#include "mc/cluster_mc.hpp"

#include "cluster/cluster_metrics.hpp"
#include "obs/digest.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace sjs::mc {

ClusterAggregate run_cluster_mc(const ClusterMcConfig& config) {
  SJS_CHECK(config.runs > 0);
  SJS_CHECK(config.fleet.size() > 0);

  ClusterAggregate agg;
  agg.scenario = cap::scenario_name(config.scenario.kind);
  {
    // Name a throwaway dispatcher so the label is right even for 0 jobs.
    cluster::DispatcherConfig dc;
    dc.key = config.key;
    dc.budget = config.budget;
    dc.min_rented = config.min_rented;
    cluster::Dispatcher probe(config.fleet, dc,
                              cluster::make_rental_controller(config.rental));
    agg.scheduler_name = probe.name();
  }
  agg.value_fractions.resize(config.runs);
  agg.mean_util_per_server.assign(config.fleet.size(), 0.0);
  if (config.compute_digests) agg.run_digests.resize(config.runs);

  // One task per run, writing only run-indexed slots: results are identical
  // for any thread count (the cluster digest gate asserts exactly this).
  std::vector<cloud::MultiSimResult> results(config.runs);
  ThreadPool pool(config.threads);
  parallel_for(pool, config.runs, [&](std::size_t run) {
    Rng rng(config.seed, run);
    // Fixed draw order: job stream first, then fleet paths.
    std::vector<Job> jobs = gen::generate_jobs(config.jobs, rng);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      jobs[i].id = static_cast<JobId>(i);
    }
    std::vector<cap::CapacityProfile> paths =
        config.fleet.sample_paths(config.scenario, config.jobs.horizon, rng);

    cluster::DispatcherConfig dc;
    dc.key = config.key;
    dc.budget = config.budget;
    dc.min_rented = config.min_rented;
    cluster::Dispatcher dispatcher(
        config.fleet, dc, cluster::make_rental_controller(config.rental));

    obs::DigestSink digest;
    results[run] = cluster::run_cluster(
        jobs, std::move(paths), dispatcher,
        config.compute_digests ? &digest : nullptr);
    if (config.compute_digests) agg.run_digests[run] = digest.digest();
    if (config.metrics) {
      cluster::publish_cluster_metrics(results[run], config.jobs.horizon,
                                       config.metrics->local());
    }
  });

  double completed = 0.0, expired = 0.0, dispatches = 0.0, preemptions = 0.0;
  double migrations = 0.0, rents = 0.0, releases = 0.0, peak = 0.0;
  double cost = 0.0, rented_time = 0.0;
  for (std::size_t run = 0; run < config.runs; ++run) {
    const cloud::MultiSimResult& r = results[run];
    agg.value_fractions[run] = r.value_fraction();
    completed += static_cast<double>(r.completed_count);
    expired += static_cast<double>(r.expired_count);
    dispatches += static_cast<double>(r.dispatches);
    preemptions += static_cast<double>(r.preemptions);
    migrations += static_cast<double>(r.migrations);
    rents += static_cast<double>(r.rent_events);
    releases += static_cast<double>(r.release_events);
    peak += static_cast<double>(r.rented_peak);
    cost += r.rental_cost;
    rented_time += r.rented_machine_time;
    for (std::size_t s = 0; s < r.busy_time_per_server.size() &&
                            s < agg.mean_util_per_server.size();
         ++s) {
      agg.mean_util_per_server[s] +=
          r.busy_time_per_server[s] / config.jobs.horizon;
    }
  }
  const double n = static_cast<double>(config.runs);
  agg.mean_completed = completed / n;
  agg.mean_expired = expired / n;
  agg.mean_dispatches = dispatches / n;
  agg.mean_preemptions = preemptions / n;
  agg.mean_migrations = migrations / n;
  agg.mean_rent_events = rents / n;
  agg.mean_release_events = releases / n;
  agg.mean_rented_peak = peak / n;
  agg.mean_cost = cost / n;
  agg.mean_rented_machine_time = rented_time / n;
  for (double& u : agg.mean_util_per_server) u /= n;
  agg.fraction_summary = summarize(agg.value_fractions);
  if (config.compute_digests) {
    agg.combined_digest = obs::combine_digests(agg.run_digests);
  }
  return agg;
}

}  // namespace sjs::mc
