#include "mc/worstcase.hpp"

#include <algorithm>
#include <cmath>

#include "offline/exact.hpp"
#include "sim/engine.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace sjs::mc {

namespace {

// Internal genotype: job parameters plus the square-wave capacity shape.
struct Genome {
  struct Gene {
    double release;
    double workload;
    double density;  // in [1, k]
    double slack;    // in [1, slack_max]
  };
  std::vector<Gene> genes;
  double wave_low;
  double wave_high;
  double wave_phase;
};

constexpr double kMinWorkload = 0.2;
constexpr double kMaxWorkload = 4.0;
constexpr double kMinWave = 0.25;

Genome random_genome(const WorstCaseOptions& options, Rng& rng) {
  Genome genome;
  genome.genes.reserve(options.jobs);
  for (std::size_t i = 0; i < options.jobs; ++i) {
    genome.genes.push_back(Genome::Gene{
        rng.uniform(0.0, options.horizon),
        rng.uniform(kMinWorkload, kMaxWorkload),
        rng.uniform(1.0, options.k),
        rng.uniform(1.0, options.slack_max),
    });
  }
  genome.wave_low = rng.uniform(kMinWave, options.horizon / 2.0);
  genome.wave_high = rng.uniform(kMinWave, options.horizon / 2.0);
  genome.wave_phase = rng.uniform(0.0, options.horizon / 2.0);
  return genome;
}

void mutate(Genome& genome, const WorstCaseOptions& options, Rng& rng) {
  // Perturb one field of one gene (or one wave parameter) by a bounded
  // multiplicative/additive kick; clamp back into the search box.
  const std::size_t choices = genome.genes.size() * 4 + 3;
  const std::size_t pick = static_cast<std::size_t>(rng.below(choices));
  const double kick = rng.uniform(0.6, 1.4);
  if (pick < genome.genes.size() * 4) {
    auto& gene = genome.genes[pick / 4];
    switch (pick % 4) {
      case 0:
        gene.release = std::clamp(
            gene.release * kick + rng.uniform(-0.3, 0.3), 0.0,
            options.horizon);
        break;
      case 1:
        gene.workload =
            std::clamp(gene.workload * kick, kMinWorkload, kMaxWorkload);
        break;
      case 2:
        gene.density = std::clamp(gene.density * kick, 1.0, options.k);
        break;
      case 3:
        gene.slack = std::clamp(gene.slack * kick, 1.0, options.slack_max);
        break;
    }
  } else if (pick == genome.genes.size() * 4) {
    genome.wave_low =
        std::clamp(genome.wave_low * kick, kMinWave, options.horizon);
  } else if (pick == genome.genes.size() * 4 + 1) {
    genome.wave_high =
        std::clamp(genome.wave_high * kick, kMinWave, options.horizon);
  } else {
    genome.wave_phase = std::clamp(
        genome.wave_phase * kick + rng.uniform(-0.3, 0.3), 0.0,
        options.horizon);
  }
}

Instance express(const Genome& genome, const WorstCaseOptions& options) {
  std::vector<Job> jobs;
  jobs.reserve(genome.genes.size());
  double cover = options.horizon;
  for (const auto& gene : genome.genes) {
    Job j;
    j.release = gene.release;
    j.workload = gene.workload;
    j.value = gene.density * gene.workload;
    j.deadline = gene.release + gene.slack * gene.workload / options.c_lo;
    cover = std::max(cover, j.deadline);
    jobs.push_back(j);
  }
  // Square wave: low until wave_phase, then alternating high/low stretches.
  std::vector<double> times{0.0};
  std::vector<double> rates{options.c_lo};
  double t = std::max(genome.wave_phase, 1e-9);
  bool high = true;
  while (t < cover) {
    times.push_back(t);
    rates.push_back(high ? options.c_hi : options.c_lo);
    t += high ? genome.wave_high : genome.wave_low;
    high = !high;
  }
  return Instance(std::move(jobs),
                  cap::CapacityProfile(std::move(times), std::move(rates)),
                  options.c_lo, options.c_hi);
}

}  // namespace

WorstCaseResult search_worst_case(const WorstCaseOptions& options,
                                  const sched::NamedFactory& factory) {
  SJS_CHECK(options.jobs >= 1);
  SJS_CHECK(options.c_hi > options.c_lo && options.c_lo > 0.0);
  SJS_CHECK(options.k >= 1.0 && options.slack_max >= 1.0);

  Rng rng(options.seed);
  WorstCaseResult best;
  best.worst_ratio = 2.0;  // above any achievable ratio

  offline::ExactOptions exact_options;
  exact_options.max_nodes = options.opt_max_nodes;

  auto evaluate = [&](const Genome& genome,
                      WorstCaseResult& out) -> double {
    const Instance instance = express(genome, options);
    const auto opt = offline::exact_offline_value(instance, exact_options);
    ++out.evaluations;
    if (opt.value <= 0.0) return 1.0;
    auto scheduler = factory.make();
    sim::Engine engine(instance, *scheduler);
    const double online = engine.run_to_completion().completed_value;
    const double ratio = online / opt.value;
    if (ratio < out.worst_ratio) {
      out.worst_ratio = ratio;
      out.offline_value = opt.value;
      out.online_value = online;
      out.jobs = instance.jobs();
      out.wave_low = genome.wave_low;
      out.wave_high = genome.wave_high;
      out.wave_phase = genome.wave_phase;
    }
    return ratio;
  };

  for (std::size_t restart = 0; restart < options.restarts; ++restart) {
    Genome current = random_genome(options, rng);
    double current_ratio = evaluate(current, best);
    for (std::size_t it = 0; it < options.iterations; ++it) {
      Genome candidate = current;
      mutate(candidate, options, rng);
      const double ratio = evaluate(candidate, best);
      if (ratio < current_ratio) {  // strict descent toward worse ratios
        current = std::move(candidate);
        current_ratio = ratio;
      }
    }
  }
  best.worst_ratio = std::min(best.worst_ratio, 1.0);
  return best;
}

}  // namespace sjs::mc
