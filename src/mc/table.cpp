#include "mc/table.hpp"

#include <cstdio>
#include <sstream>

#include "util/csv.hpp"
#include "util/logging.hpp"

namespace sjs::mc {

TableRow make_row(double lambda, const McOutcome& outcome, int vdover_index) {
  TableRow row;
  row.lambda = lambda;
  SJS_CHECK(vdover_index >= 0 &&
            static_cast<std::size_t>(vdover_index) <
                outcome.per_scheduler.size());
  for (std::size_t s = 0; s < outcome.per_scheduler.size(); ++s) {
    const auto& agg = outcome.per_scheduler[s];
    const double pct = agg.fraction_summary.mean * 100.0;
    row.percent.push_back(pct);
    row.ci95.push_back((agg.fraction_summary.ci95_hi -
                        agg.fraction_summary.ci95_lo) *
                       0.5 * 100.0);
    const bool is_dover = agg.name.rfind("Dover", 0) == 0;
    if (is_dover &&
        (row.best_dover_index < 0 ||
         pct > row.percent[static_cast<std::size_t>(row.best_dover_index)])) {
      row.best_dover_index = static_cast<int>(s);
    }
  }
  row.vdover_percent = row.percent[static_cast<std::size_t>(vdover_index)];
  if (row.best_dover_index >= 0) {
    row.best_dover_percent =
        row.percent[static_cast<std::size_t>(row.best_dover_index)];
    row.gain_percent =
        100.0 * (row.vdover_percent / row.best_dover_percent - 1.0);
  }
  return row;
}

std::string Table::render(bool show_ci) const {
  std::ostringstream os;
  char buf[64];
  os << "lambda";
  for (const auto& name : scheduler_names) {
    std::snprintf(buf, sizeof(buf), " | %14s", name.c_str());
    os << buf;
  }
  os << " |  gain%\n";
  for (const auto& row : rows) {
    std::snprintf(buf, sizeof(buf), "%6.1f", row.lambda);
    os << buf;
    for (std::size_t s = 0; s < row.percent.size(); ++s) {
      const bool best =
          static_cast<int>(s) == row.best_dover_index;
      if (show_ci) {
        std::snprintf(buf, sizeof(buf), " | %s%6.2f±%4.2f%s",
                      best ? "*" : " ", row.percent[s], row.ci95[s],
                      best ? "*" : " ");
      } else {
        std::snprintf(buf, sizeof(buf), " | %s%12.4f%s", best ? "*" : " ",
                      row.percent[s], best ? "*" : " ");
      }
      os << buf;
    }
    std::snprintf(buf, sizeof(buf), " | %6.2f\n", row.gain_percent);
    os << buf;
  }
  os << "(* marks the best Dover column per row; gain% = V-Dover vs best "
        "Dover, as in the paper's Table I)\n";
  return os.str();
}

void Table::save_csv(const std::string& path) const {
  CsvWriter writer(path);
  std::vector<std::string> header{"lambda"};
  for (const auto& name : scheduler_names) header.push_back(name);
  header.push_back("best_dover");
  header.push_back("gain_percent");
  writer.write_row(header);
  for (const auto& row : rows) {
    std::vector<std::string> fields{format_double(row.lambda)};
    for (double pct : row.percent) fields.push_back(format_double(pct));
    fields.push_back(format_double(row.best_dover_percent));
    fields.push_back(format_double(row.gain_percent));
    writer.write_row(fields);
  }
}

}  // namespace sjs::mc
