// Monte-Carlo driver for the paper's Sec. IV experiments.
//
// Determinism contract: run r of master seed S always simulates the same
// instance (derived via Rng(S, r)), for every scheduler — algorithms are
// compared on *identical* sample paths (common random numbers, which is also
// what the paper's Fig. 1 does), and results are independent of thread count
// and scheduling because each run writes only its own result slot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "jobs/workload_gen.hpp"
#include "obs/metrics.hpp"
#include "sched/factory.hpp"
#include "sim/result.hpp"
#include "stats/summary.hpp"
#include "stats/timeseries.hpp"
#include "util/thread_pool.hpp"

namespace sjs::mc {

struct McConfig {
  gen::PaperSetup setup;
  std::size_t runs = 100;      ///< paper Table I uses 800
  std::uint64_t seed = 42;
  std::size_t threads = 0;     ///< 0 = hardware concurrency
  bool keep_traces = false;    ///< retain per-run value-vs-time traces (Fig. 1)
  /// Fold every run's engine event stream into a 64-bit replay digest
  /// (obs::DigestSink). Digests land in run-indexed slots, so the combined
  /// digest is thread-count-independent — the determinism contract as a
  /// checkable value.
  bool compute_digests = false;
  /// Optional metrics sink: each worker feeds its thread-local shard via
  /// obs::TraceMetricsBridge. Not owned; must outlive the call. Snapshot it
  /// only after run_monte_carlo returns.
  obs::MetricsRegistry* metrics = nullptr;
};

struct SchedulerAggregate {
  std::string name;
  /// Per-run captured fraction of generated value (the Table-I metric).
  std::vector<double> value_fractions;
  Summary fraction_summary;
  /// Per-run cumulative value traces (only when keep_traces).
  std::vector<StepFunction> traces;
  /// Per-run replay digests (only when compute_digests).
  std::vector<std::uint64_t> run_digests;
  /// Order-sensitive fold of run_digests (0 when digests are off).
  std::uint64_t combined_digest = 0;
  /// Means over runs of auxiliary counters.
  double mean_completed = 0.0;
  double mean_expired = 0.0;
  double mean_preemptions = 0.0;
};

struct McOutcome {
  McConfig config;
  std::vector<SchedulerAggregate> per_scheduler;  ///< same order as factories
};

/// Runs `config.runs` seeded instances through every factory.
McOutcome run_monte_carlo(const McConfig& config,
                          const std::vector<sched::NamedFactory>& factories);

/// Simulates one (setup, seed, run) instance with one scheduler — the unit
/// the driver parallelises; exposed for tests and the Fig.-1 bench.
sim::SimResult simulate_one(const gen::PaperSetup& setup, std::uint64_t seed,
                            std::uint64_t run, const sched::NamedFactory& f);

/// Dumps the per-run captured fractions as CSV (one row per run, one column
/// per scheduler) — the raw sample behind every Table-I cell, for external
/// statistical analysis.
void save_runs_csv(const McOutcome& outcome, const std::string& path);

}  // namespace sjs::mc
