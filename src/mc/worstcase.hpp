// Empirical worst-case search: how tight are the competitive-ratio bounds?
//
// Theorem 3 brackets V-Dover between the achievable ratio
// 1/((√k+√f(k,δ))²+1) and the 1/(1+√k)² upper bound, but says nothing about
// where algorithms actually land. This module *searches* for bad instances:
// randomised hill climbing over small job sets and square-wave capacity
// paths, minimising (online value) / (exact offline optimum). The result is
// an upper bound on the algorithm's true competitive ratio for the searched
// input class — it shows the analytical guarantee is conservative and ranks
// algorithms by adversarial robustness (bench_worstcase).
//
// Search space: n jobs with bounded parameters (release in [0, horizon],
// workload in [0.2, 4], value density in [1, k], slack factor in
// [1, slack_max] — individual admissibility holds by construction) and a
// square wave inside the band [c_lo, c_hi] parameterised by (low duration,
// high duration, phase). Mutations perturb one field; strict-descent
// acceptance; random restarts escape local minima.
#pragma once

#include <cstdint>
#include <vector>

#include "jobs/instance.hpp"
#include "sched/factory.hpp"

namespace sjs::mc {

struct WorstCaseOptions {
  std::size_t jobs = 8;
  double horizon = 10.0;
  double k = 7.0;            ///< value densities in [1, k]
  double c_lo = 1.0;
  double c_hi = 5.0;
  double slack_max = 2.0;    ///< relative deadline in [1, slack_max]·p/c_lo
  std::size_t restarts = 8;
  std::size_t iterations = 250;  ///< mutations per restart
  std::uint64_t seed = 1;
  /// Exact-solver node budget per evaluation. When the solver truncates, the
  /// B&B incumbent (a lower bound on OPT) is used, which can only make the
  /// reported ratio *larger* — the search result stays a valid upper bound
  /// on the worst case.
  std::uint64_t opt_max_nodes = 200'000;
};

struct WorstCaseResult {
  double worst_ratio = 1.0;   ///< min found (online / OPT)
  double offline_value = 0.0; ///< OPT on the worst instance found
  double online_value = 0.0;
  std::vector<Job> jobs;      ///< the worst instance's job set
  double wave_low = 1.0;      ///< square-wave low-state duration
  double wave_high = 1.0;     ///< square-wave high-state duration
  double wave_phase = 0.0;    ///< time of the first low->high switch
  std::uint64_t evaluations = 0;
};

/// Hill-climbs toward the worst instance for `factory`. Deterministic in
/// options.seed; every evaluated instance is individually admissible.
WorstCaseResult search_worst_case(const WorstCaseOptions& options,
                                  const sched::NamedFactory& factory);

}  // namespace sjs::mc
