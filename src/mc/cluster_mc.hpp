// Monte-Carlo driver for the cluster plane: seeded fleets of capacity paths
// (capacity/scenario.hpp) under a cluster::Dispatcher on cloud::MultiEngine.
//
// Same determinism contract as run_monte_carlo: run r of master seed S draws
// the same job stream and the same fleet sample paths via Rng(S, r)
// regardless of thread count, every run writes only its own result slot, and
// per-run digests land in run-indexed slots so the combined digest is a
// thread-count-independent determinism check (the cluster digest gate).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cloud/global_sched.hpp"
#include "cluster/dispatcher.hpp"
#include "cluster/fleet.hpp"
#include "jobs/workload_gen.hpp"
#include "obs/metrics.hpp"
#include "stats/summary.hpp"

namespace sjs::mc {

struct ClusterMcConfig {
  /// Arrival shape. Set jobs.c_lo to fleet.admission_c_lo() so relative
  /// deadlines are sized to the strongest machine's floor (the fleet's
  /// admission bound).
  gen::JobGenParams jobs;
  cluster::Fleet fleet = cluster::Fleet::heterogeneous(4);
  cluster::ScenarioConfig scenario;
  cloud::GlobalKey key = cloud::GlobalKey::kDeadline;
  std::string rental = "threshold";  ///< "static" | "threshold" | "load"
  double budget = 0.0;               ///< <= 0: unlimited
  std::size_t min_rented = 1;
  std::size_t runs = 32;
  std::uint64_t seed = 42;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  bool compute_digests = false;
  /// Optional metrics sink (cluster.* counters and gauges per run). Not
  /// owned; snapshot only after run_cluster_mc returns.
  obs::MetricsRegistry* metrics = nullptr;
};

struct ClusterAggregate {
  std::string scheduler_name;  ///< dispatcher name, e.g. "Cluster-EDF/threshold"
  std::string scenario;        ///< scenario label
  std::vector<double> value_fractions;  ///< per-run captured value fraction
  Summary fraction_summary;
  double mean_completed = 0.0;
  double mean_expired = 0.0;
  double mean_dispatches = 0.0;
  double mean_preemptions = 0.0;
  double mean_migrations = 0.0;
  double mean_rent_events = 0.0;
  double mean_release_events = 0.0;
  double mean_rented_peak = 0.0;
  double mean_cost = 0.0;
  double mean_rented_machine_time = 0.0;
  /// Mean per-server utilisation (busy time / horizon), fleet order.
  std::vector<double> mean_util_per_server;
  std::vector<std::uint64_t> run_digests;  ///< only when compute_digests
  std::uint64_t combined_digest = 0;
};

/// Runs `config.runs` seeded (jobs, fleet-paths) instances through a fresh
/// dispatcher each (rental controllers are stateful).
ClusterAggregate run_cluster_mc(const ClusterMcConfig& config);

}  // namespace sjs::mc
