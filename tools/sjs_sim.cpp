// sjs_sim — command-line simulator for archived instance bundles.
//
// The downstream-user entry point: point it at an instance bundle (see
// src/jobs/bundle.hpp — jobs.csv + capacity.csv + band.csv, e.g. exported
// from production telemetry or archived by worst_case_hunt), pick a
// scheduler, and get the run report, optional Gantt chart, optional
// value-trace CSV, and optional comparison against the exact offline
// optimum.
//
//   sjs_sim --bundle=DIR [--scheduler=V-Dover] [--gantt] [--opt]
//           [--trace-csv=out.csv] [--outcomes-csv=out.csv]
//           [--trace=FILE --trace-format=jsonl|chrome]
//           [--metrics] [--check-invariants] [--list-schedulers]
//   sjs_sim --cluster-bundle=DIR [--outcomes-csv=out.csv]
//   sjs_sim --cluster=K [--rental=threshold] [--budget=0] [--min-rented=1]
//           [--cluster-runs=32] [--cluster-lambda=6] [--seed=42]
//
// A serving journal (sjs_serve --journal=DIR) is itself a bundle: replaying
// it here with the journalled scheduler reproduces the live session's
// outcomes bit-exactly (docs/serving.md).
//
// --cluster-bundle replays a cluster journal (sjs_serve --cluster=K
// --journal=DIR, docs/cluster.md): the fleet, dispatcher configuration, and
// admitted stream are rebuilt from the bundle and the outcomes reproduce the
// live session byte-for-byte (cancel-free sessions).
//
// --cluster=K runs the fleet Monte-Carlo tables instead: every capacity
// scenario (steady / diurnal / flash-crowd / outage) × both global
// schedulers on a heterogeneous K-machine fleet, reporting captured value,
// rental cost, rented peak, and migrations per cell.
#include <cstdio>

#include "cluster/cluster_journal.hpp"
#include "cluster/dispatcher.hpp"
#include "jobs/bundle.hpp"
#include "mc/cluster_mc.hpp"
#include "obs/digest.hpp"
#include "obs/exporters.hpp"
#include "obs/invariants.hpp"
#include "obs/metrics.hpp"
#include "offline/exact.hpp"
#include "offline/greedy_offline.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "sim/gantt.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

namespace {

/// Replays a cluster journal bundle bit-exactly (docs/cluster.md).
int run_cluster_replay(const std::string& dir, const std::string& outcomes_csv) {
  sjs::cluster::ClusterBundle bundle;
  try {
    bundle = sjs::cluster::load_cluster_bundle(dir);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "failed to load cluster bundle: %s\n", e.what());
    return 1;
  }
  sjs::cluster::DispatcherConfig dc;
  std::string rental = "static";
  try {
    const auto& meta = bundle.meta;
    if (meta.count("sched_key")) {
      dc.key = meta.at("sched_key") == "density"
                   ? sjs::cloud::GlobalKey::kValueDensity
                   : sjs::cloud::GlobalKey::kDeadline;
    }
    if (meta.count("rental")) rental = meta.at("rental");
    if (meta.count("budget")) dc.budget = std::stod(meta.at("budget"));
    if (meta.count("min_rented")) {
      dc.min_rented = static_cast<std::size_t>(std::stoul(meta.at("min_rented")));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "malformed cluster bundle meta: %s\n", e.what());
    return 1;
  }
  std::printf("cluster bundle: %zu jobs, fleet of %zu, band [%g, %g], "
              "key=%s rental=%s budget=%g min_rented=%zu\n",
              bundle.jobs.size(), bundle.fleet.size(),
              bundle.fleet.admission_c_lo(), bundle.fleet.max_hi(),
              dc.key == sjs::cloud::GlobalKey::kDeadline ? "deadline"
                                                         : "density",
              rental.c_str(), dc.budget, dc.min_rented);
  if (!bundle.cancels.empty()) {
    std::printf("note: %zu cancels in the bundle — cancel-bearing sessions "
                "are outside the bit-exact replay guarantee\n",
                bundle.cancels.size());
  }
  sjs::cluster::Dispatcher dispatcher(
      bundle.fleet, dc, sjs::cluster::make_rental_controller(rental));
  const sjs::cloud::MultiSimResult result = sjs::cluster::run_cluster(
      bundle.jobs, std::move(bundle.paths), dispatcher);
  std::printf("\n%s: %llu completed, %llu expired, value %.3f/%.3f, "
              "rental cost %.3f, peak %llu machines, %llu migrations\n",
              result.scheduler_name.c_str(),
              static_cast<unsigned long long>(result.completed_count),
              static_cast<unsigned long long>(result.expired_count),
              result.completed_value, result.generated_value,
              result.rental_cost,
              static_cast<unsigned long long>(result.rented_peak),
              static_cast<unsigned long long>(result.migrations));
  if (!outcomes_csv.empty()) {
    sjs::cloud::save_multi_outcomes_csv(result, bundle.jobs, outcomes_csv);
    std::printf("outcomes written to %s\n", outcomes_csv.c_str());
  }
  return 0;
}

/// Fleet Monte-Carlo tables: scenarios × global schedulers.
int run_cluster_tables(std::size_t fleet_size, const std::string& rental,
                       double budget, std::size_t min_rented, std::size_t runs,
                       double lambda, std::uint64_t seed) {
  sjs::mc::ClusterMcConfig config;
  config.fleet = sjs::cluster::Fleet::heterogeneous(fleet_size);
  config.jobs.lambda = lambda;
  config.jobs.horizon = 400.0 / lambda;
  config.jobs.c_lo = config.fleet.admission_c_lo();
  config.rental = rental;
  config.budget = budget;
  config.min_rented = min_rented;
  config.runs = runs;
  config.seed = seed;
  std::printf("cluster MC: heterogeneous fleet of %zu, %zu runs/cell, "
              "lambda=%g, seed=%llu, rental=%s\n\n",
              fleet_size, runs, lambda,
              static_cast<unsigned long long>(seed), rental.c_str());
  std::printf("%-12s %-24s %9s %7s %9s %6s %6s %6s\n", "scenario",
              "scheduler", "value%", "±ci95", "cost", "peak", "migr",
              "expire");
  for (const auto kind : sjs::cap::all_scenarios()) {
    config.scenario.kind = kind;
    for (const auto key : {sjs::cloud::GlobalKey::kDeadline,
                           sjs::cloud::GlobalKey::kValueDensity}) {
      config.key = key;
      const sjs::mc::ClusterAggregate agg = sjs::mc::run_cluster_mc(config);
      const double half =
          (agg.fraction_summary.ci95_hi - agg.fraction_summary.ci95_lo) / 2.0;
      std::printf("%-12s %-24s %8.2f%% %7.2f %9.2f %6.1f %6.1f %6.1f\n",
                  agg.scenario.c_str(), agg.scheduler_name.c_str(),
                  100.0 * agg.fraction_summary.mean, 100.0 * half,
                  agg.mean_cost, agg.mean_rented_peak, agg.mean_migrations,
                  agg.mean_expired);
    }
  }
  std::printf("\nper-server utilisation (steady scenario, %s):\n",
              rental.c_str());
  config.scenario.kind = sjs::cap::ScenarioKind::kSteady;
  config.key = sjs::cloud::GlobalKey::kDeadline;
  const sjs::mc::ClusterAggregate agg = sjs::mc::run_cluster_mc(config);
  for (std::size_t s = 0; s < agg.mean_util_per_server.size(); ++s) {
    std::printf("  server%zu (speed %.1f, cost %.2f): %.1f%%\n", s,
                config.fleet.spec(s).speed, config.fleet.spec(s).cost_rate,
                100.0 * agg.mean_util_per_server[s]);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  sjs::CliFlags flags;
  flags.add_string("bundle", "", "instance bundle directory (required)");
  flags.add_string("scheduler", "V-Dover",
                   "scheduler name (see --list-schedulers)");
  flags.add_bool("gantt", false, "print an ASCII Gantt chart");
  flags.add_bool("opt", false,
                 "also compute the exact offline optimum (small instances) "
                 "and the greedy offline approximation");
  flags.add_string("trace-csv", "",
                   "write the cumulative value trace to this CSV");
  flags.add_string("outcomes-csv", "",
                   "write per-job outcomes to this CSV (the serving smoke "
                   "gate diffs this against a live session's journal)");
  flags.add_string("trace", "", "write the full engine event trace to FILE");
  flags.add_string("trace-format", "jsonl",
                   "trace file format: jsonl | chrome (chrome://tracing)");
  flags.add_bool("metrics", false,
                 "collect and print run metrics (counters, distributions)");
  flags.add_bool("check-invariants", false,
                 "verify conservation laws online against the event stream");
  flags.add_bool("list-schedulers", false, "print scheduler names and exit");
  flags.add_string("cluster-bundle", "",
                   "replay a cluster journal (sjs_serve --cluster) bit-exactly");
  flags.add_int("cluster", 0,
                "fleet size for the cluster Monte-Carlo tables (0 = off)");
  flags.add_string("rental", "threshold",
                   "cluster rental policy: static | threshold | load");
  flags.add_double("budget", 0.0, "cluster rental budget (<= 0 = unlimited)");
  flags.add_int("min-rented", 1, "cluster minimum rented machines");
  flags.add_int("cluster-runs", 32, "Monte-Carlo runs per cluster cell");
  flags.add_double("cluster-lambda", 6.0, "cluster table arrival rate");
  flags.add_int("seed", 42, "cluster Monte-Carlo master seed");
  if (!flags.parse(argc, argv)) {
    if (!flags.error().empty()) {
      std::fprintf(stderr, "%s\n", flags.error().c_str());
      return 1;
    }
    return 0;
  }

  if (flags.get_bool("list-schedulers")) {
    for (const auto& f : sjs::sched::full_lineup(1.0, 35.0)) {
      std::printf("%s\n", f.name.c_str());
    }
    return 0;
  }
  if (!flags.get_string("cluster-bundle").empty()) {
    return run_cluster_replay(flags.get_string("cluster-bundle"),
                              flags.get_string("outcomes-csv"));
  }
  if (flags.get_int("cluster") > 0) {
    const long min_rented = flags.get_int("min-rented");
    const long runs = flags.get_int("cluster-runs");
    const double lambda = flags.get_double("cluster-lambda");
    if (min_rented < 1 || min_rented > flags.get_int("cluster") ||
        runs < 1 || !(lambda > 0.0)) {
      std::fprintf(stderr, "need 1 <= min-rented <= cluster, cluster-runs "
                   ">= 1, cluster-lambda > 0\n");
      return 1;
    }
    try {
      return run_cluster_tables(
          static_cast<std::size_t>(flags.get_int("cluster")),
          flags.get_string("rental"), flags.get_double("budget"),
          static_cast<std::size_t>(min_rented), static_cast<std::size_t>(runs),
          lambda, static_cast<std::uint64_t>(flags.get_int("seed")));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  }
  if (flags.get_string("bundle").empty()) {
    std::fprintf(stderr, "--bundle is required (try --help)\n");
    return 1;
  }

  sjs::Instance instance = [&] {
    try {
      return sjs::load_instance_bundle(flags.get_string("bundle"));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "failed to load bundle: %s\n", e.what());
      std::exit(1);
    }
  }();

  std::printf("bundle: %zu jobs, total value %.3f, band [%g, %g] "
              "(delta %.2f), k=%.2f, %s\n",
              instance.size(), instance.total_value(), instance.c_lo(),
              instance.c_hi(), instance.delta(), instance.importance_ratio(),
              instance.all_individually_admissible()
                  ? "all jobs individually admissible"
                  : "contains inadmissible jobs");

  const auto factories =
      sjs::sched::full_lineup(instance.c_lo(), instance.c_hi());
  const sjs::sched::NamedFactory* chosen =
      sjs::sched::find_factory(factories, flags.get_string("scheduler"));
  if (!chosen) {
    std::fprintf(stderr, "unknown scheduler \"%s\" — use --list-schedulers\n",
                 flags.get_string("scheduler").c_str());
    return 1;
  }

  auto scheduler = chosen->make();
  sjs::sim::Engine engine(instance, *scheduler);
  if (flags.get_bool("gantt")) engine.record_schedule(true);

  // Observability wiring (src/obs/): every requested consumer taps the same
  // event stream through one tee.
  const bool want_trace = !flags.get_string("trace").empty();
  const bool want_metrics = flags.get_bool("metrics");
  const bool want_invariants = flags.get_bool("check-invariants");
  sjs::obs::VectorTraceSink events;
  sjs::obs::DigestSink digest;
  sjs::obs::MetricsRegistry registry;
  sjs::obs::TraceMetricsBridge bridge(registry.local());
  sjs::obs::InvariantChecker checker(instance);
  sjs::obs::TeeSink tee;
  if (want_trace) tee.add(&events);
  if (want_metrics) tee.add(&bridge);
  if (want_invariants) tee.add(&checker);
  if (tee.sink_count() > 0) {
    tee.add(&digest);
    engine.attach_trace(&tee);
  }

  auto result = engine.run_to_completion();
  std::printf("\n%s\n", result.to_string().c_str());

  if (want_trace) {
    const std::string path = flags.get_string("trace");
    const std::string format = flags.get_string("trace-format");
    try {
      sjs::obs::save_trace(events.events(), path, format);
      std::printf("event trace (%zu events, %s) written to %s\n",
                  events.events().size(), format.c_str(), path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "failed to write trace: %s\n", e.what());
      return 1;
    }
  }
  if (want_metrics) {
    // Hot-path occupancy gauges (timer slab / event heap) from the run.
    auto& shard = registry.local();
    shard.set_gauge(sjs::obs::kGaugeTimerSlabPeak,
                    static_cast<double>(result.timer_slab_peak));
    shard.set_gauge(sjs::obs::kGaugeTimerSlabSlots,
                    static_cast<double>(result.timer_slab_slots));
    shard.set_gauge(sjs::obs::kGaugeJobSlabPeak,
                    static_cast<double>(result.job_slab_peak));
    shard.set_gauge(sjs::obs::kGaugeJobSlabSlots,
                    static_cast<double>(result.job_slab_slots));
    shard.set_gauge(sjs::obs::kGaugeEventHeapPeak,
                    static_cast<double>(result.event_heap_peak));
    shard.set_gauge(sjs::obs::kGaugeEventHeapDeadPeak,
                    static_cast<double>(result.event_heap_dead_peak));
    shard.count(sjs::obs::kCounterTimersArmed,
                static_cast<double>(result.timers_armed));
    shard.count(sjs::obs::kCounterHeapCompactions,
                static_cast<double>(result.heap_compactions));
    shard.count(sjs::obs::kCounterTimerCascades,
                static_cast<double>(result.timer_cascades));
    shard.count(sjs::obs::kCounterTimerCascadeEntries,
                static_cast<double>(result.timer_cascade_entries));
    shard.set_gauge(sjs::obs::kGaugeTimerBucketPeak,
                    static_cast<double>(result.timer_bucket_peak));
    shard.set_gauge(sjs::obs::kGaugeQueuePeak,
                    static_cast<double>(result.queue_peak));
    shard.set_gauge(sjs::obs::kGaugeQueueSlots,
                    static_cast<double>(result.queue_slots));
    std::printf("\nmetrics:\n%s", registry.render().c_str());
  }
  if (want_invariants) {
    checker.verify_executed_work(result.executed_work);
    if (checker.ok()) {
      std::printf("\ninvariants: all hold (%llu events checked, replay "
                  "digest %016llx)\n",
                  static_cast<unsigned long long>(digest.event_count()),
                  static_cast<unsigned long long>(digest.digest()));
    } else {
      std::fprintf(stderr, "\ninvariant violations:\n%s",
                   checker.report().c_str());
      return 1;
    }
  }

  if (flags.get_bool("gantt")) {
    std::printf("\n%s", sjs::sim::render_gantt(instance, result).c_str());
  }

  if (!flags.get_string("outcomes-csv").empty()) {
    sjs::sim::save_outcomes_csv(result, instance.jobs(),
                                flags.get_string("outcomes-csv"));
    std::printf("outcomes written to %s\n",
                flags.get_string("outcomes-csv").c_str());
  }

  if (!flags.get_string("trace-csv").empty()) {
    sjs::CsvWriter writer(flags.get_string("trace-csv"));
    writer.write_row({"time", "cumulative_value"});
    for (std::size_t i = 0; i < result.value_trace.size(); ++i) {
      writer.write_row_numeric(
          {result.value_trace.times()[i], result.value_trace.values()[i]});
    }
    std::printf("value trace written to %s\n",
                flags.get_string("trace-csv").c_str());
  }

  if (flags.get_bool("opt")) {
    auto greedy = sjs::offline::best_greedy_offline_value(instance);
    std::printf("\ngreedy offline approximation: %.3f\n", greedy.value);
    if (instance.size() <= 24) {
      auto exact = sjs::offline::exact_offline_value(instance);
      std::printf("exact offline optimum: %.3f (%s, %llu nodes)\n",
                  exact.value,
                  exact.proved_optimal ? "proved" : "budget-truncated",
                  static_cast<unsigned long long>(exact.nodes_visited));
      if (exact.value > 0.0) {
        std::printf("online/OPT ratio: %.4f\n",
                    result.completed_value / exact.value);
      }
    } else {
      std::printf("(instance too large for the exact solver; greedy and the "
                  "flow bound are the available references)\n");
    }
  }
  return 0;
}
