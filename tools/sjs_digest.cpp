// sjs_digest — replay-digest gate for engine/scheduler refactors.
//
// Runs a Monte-Carlo campaign with per-run replay digests for every scheduler
// in the extended line-up (plus the adaptive-EWMA variants, which exercise the
// capacity-change timer re-arm path) at each requested λ, across at least two
// thread counts, and prints one line per (λ, scheduler) cell:
//
//   lambda=6 scheduler=V-Dover runs=64 digest=0123456789abcdef
//
// The combined digest folds the full canonical event stream of every run, so
// two builds printing identical output are replay-equivalent: any hot-path
// refactor that changes a single event (order, payload, or count) diverges.
// Usage as a gate:
//
//   ./sjs_digest > before.txt        # at the baseline commit
//   ./sjs_digest > after.txt         # with the refactor applied
//   diff before.txt after.txt        # must be empty
//
// Thread-count independence is asserted internally (the campaign is run once
// per entry of --threads and the digests must agree), so a single output file
// also certifies the determinism contract.
// --cluster switches to the fleet gate instead: every capacity scenario ×
// both global schedulers on the heterogeneous 4-machine fleet under the
// threshold rental policy, one line per cell:
//
//   cluster scenario=steady scheduler=Cluster-EDF/threshold runs=32 digest=...
//
// CI diffs that output against tests/cluster_digest_baseline.txt.
#include <cstdio>
#include <cstdlib>

#include "mc/cluster_mc.hpp"
#include "mc/monte_carlo.hpp"
#include "sched/factory.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"

namespace {

std::vector<sjs::sched::NamedFactory> gate_lineup() {
  // c_lo/c_hi below must match gen::PaperSetup defaults (1, 35).
  auto lineup = sjs::sched::extended_lineup({1.0, 18.0, 35.0});
  lineup.push_back(sjs::sched::make_dover_ewma());
  sjs::sched::VDoverOptions ewma;
  ewma.adaptive_estimate = true;
  lineup.push_back(sjs::sched::make_vdover_with(ewma));
  return lineup;
}

}  // namespace

int main(int argc, char** argv) {
  sjs::CliFlags flags;
  flags.add_double_list("lambda", {6.0, 20.0}, "arrival rates to gate");
  flags.add_int("runs", 64, "Monte-Carlo runs per (lambda, scheduler) cell");
  flags.add_int("jobs", 400, "expected jobs per run");
  flags.add_int("seed", 42, "master seed");
  flags.add_double_list("threads", {1.0, 4.0},
                        "thread counts; digests must agree across all");
  flags.add_bool("cluster", false,
                 "gate the cluster plane (scenario × global-scheduler cells) "
                 "instead of the single-server lineup");
  flags.add_int("cluster-runs", 32, "Monte-Carlo runs per cluster cell");
  if (!flags.parse(argc, argv)) {
    if (!flags.error().empty()) {
      std::fprintf(stderr, "%s\n", flags.error().c_str());
      return 1;
    }
    return 0;
  }

  const auto factories = gate_lineup();
  const auto& thread_counts = flags.get_double_list("threads");
  SJS_CHECK_MSG(thread_counts.size() >= 2,
                "digest gate needs at least two thread counts");

  if (flags.get_bool("cluster")) {
    sjs::mc::ClusterMcConfig config;
    config.fleet = sjs::cluster::Fleet::heterogeneous(4);
    config.jobs.c_lo = config.fleet.admission_c_lo();
    config.runs = static_cast<std::size_t>(flags.get_int("cluster-runs"));
    config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    config.compute_digests = true;
    for (const auto kind : sjs::cap::all_scenarios()) {
      config.scenario.kind = kind;
      for (const auto key : {sjs::cloud::GlobalKey::kDeadline,
                             sjs::cloud::GlobalKey::kValueDensity}) {
        config.key = key;
        std::vector<sjs::mc::ClusterAggregate> outcomes;
        for (double threads : thread_counts) {
          config.threads = static_cast<std::size_t>(threads);
          outcomes.push_back(sjs::mc::run_cluster_mc(config));
        }
        for (std::size_t t = 1; t < outcomes.size(); ++t) {
          if (outcomes[t].combined_digest != outcomes[0].combined_digest) {
            std::fprintf(stderr,
                         "FATAL: cluster digest for %s/%s diverges between "
                         "%zu and %zu threads — determinism contract broken\n",
                         outcomes[0].scenario.c_str(),
                         outcomes[0].scheduler_name.c_str(),
                         static_cast<std::size_t>(thread_counts[0]),
                         static_cast<std::size_t>(thread_counts[t]));
            return 2;
          }
        }
        std::printf("cluster scenario=%s scheduler=%s runs=%zu "
                    "digest=%016llx\n",
                    outcomes[0].scenario.c_str(),
                    outcomes[0].scheduler_name.c_str(), config.runs,
                    static_cast<unsigned long long>(
                        outcomes[0].combined_digest));
      }
    }
    return 0;
  }

  for (double lambda : flags.get_double_list("lambda")) {
    sjs::mc::McConfig config;
    config.setup.lambda = lambda;
    config.setup.expected_jobs = static_cast<double>(flags.get_int("jobs"));
    config.runs = static_cast<std::size_t>(flags.get_int("runs"));
    config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    config.compute_digests = true;

    std::vector<sjs::mc::McOutcome> outcomes;
    for (double threads : thread_counts) {
      config.threads = static_cast<std::size_t>(threads);
      outcomes.push_back(sjs::mc::run_monte_carlo(config, factories));
    }
    for (std::size_t s = 0; s < factories.size(); ++s) {
      for (std::size_t t = 1; t < outcomes.size(); ++t) {
        if (outcomes[t].per_scheduler[s].combined_digest !=
            outcomes[0].per_scheduler[s].combined_digest) {
          std::fprintf(stderr,
                       "FATAL: digest for %s diverges between %zu and %zu "
                       "threads — determinism contract broken\n",
                       factories[s].name.c_str(),
                       static_cast<std::size_t>(thread_counts[0]),
                       static_cast<std::size_t>(thread_counts[t]));
          return 2;
        }
      }
      std::printf("lambda=%g scheduler=%s runs=%zu digest=%016llx\n", lambda,
                  factories[s].name.c_str(), config.runs,
                  static_cast<unsigned long long>(
                      outcomes[0].per_scheduler[s].combined_digest));
    }
  }
  return 0;
}
