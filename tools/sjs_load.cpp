// sjs_load — open-loop Poisson load generator for sjs_serve.
//
//   sjs_load --port=PORT [--duration=2] [--rate=200] [--mean-workload=0.02]
//            [--c-lo=1] [--slack-min=1.05] [--slack-max=4] [--k=7]
//            [--seed=1] [--drain] [--linger=2] [--connections=1]
//
// Submits jobs at Poisson arrival instants regardless of server responses
// (open loop — the regime where SHED backpressure is actually exercised),
// then reports admission/completion counts, captured-value percentage, and
// ack/completion latency percentiles. With --connections=N the arrival
// stream round-robins over N sockets (one poll set, still single-threaded)
// and the report adds per-connection counts and percentiles — the shape
// that exercises sjs_serve --shards=N. With --drain it asks the server to
// drain after the last submission and waits for the final notifications.
#include <cstdio>

#include "serve/clock.hpp"
#include "serve/loadgen.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  sjs::CliFlags flags;
  flags.add_int("port", 0, "sjs_serve port (required)");
  flags.add_double("duration", 2.0, "wall seconds of submission activity");
  flags.add_double("rate", 200.0, "mean submissions per wall second");
  flags.add_double("mean-workload", 0.02,
                   "mean job workload in virtual capacity-seconds");
  flags.add_double("c-lo", 1.0, "band floor assumed for deadline windows");
  flags.add_double("slack-min", 1.05, "deadline window multiplier lower bound");
  flags.add_double("slack-max", 4.0, "deadline window multiplier upper bound");
  flags.add_double("k", 7.0, "importance ratio: value density ~ U[1, k]");
  flags.add_int("seed", 1, "random seed");
  flags.add_bool("drain", false, "request a server drain when done");
  flags.add_double("linger", 2.0,
                   "wall seconds to wait for notifications after submitting");
  flags.add_int("connections", 1,
                "sockets to open; submissions round-robin over them");
  if (!flags.parse(argc, argv)) {
    if (!flags.error().empty()) {
      std::fprintf(stderr, "%s\n", flags.error().c_str());
      return 1;
    }
    return 0;
  }
  if (flags.get_int("port") <= 0) {
    std::fprintf(stderr, "--port is required\n");
    return 1;
  }
  if (!flags.require_positive("duration") ||
      !flags.require_positive("rate") ||
      !flags.require_positive("mean-workload") ||
      !flags.require_positive("c-lo") ||
      !flags.require_positive("connections")) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 1;
  }

  sjs::serve::LoadGenConfig config;
  config.port = static_cast<int>(flags.get_int("port"));
  config.duration_s = flags.get_double("duration");
  config.linger_s = flags.get_double("linger");
  config.arrival_rate = flags.get_double("rate");
  config.mean_workload = flags.get_double("mean-workload");
  config.c_lo = flags.get_double("c-lo");
  config.slack_min = flags.get_double("slack-min");
  config.slack_max = flags.get_double("slack-max");
  config.k = flags.get_double("k");
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.send_drain = flags.get_bool("drain");
  config.connections = static_cast<int>(flags.get_int("connections"));

  sjs::serve::SystemClock clock;
  try {
    const auto report = sjs::serve::run_load(config, clock);
    std::printf("%s\n", report.to_string().c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
}
