// sjs_lint — repo-specific determinism/contract linter.
//
// A self-contained token/regex scanner (no libclang) that enforces the
// invariants the replay-digest gate depends on *before* code reaches the
// gate. The rules are deliberately narrow: each one encodes a way a change
// has broken (or could silently break) byte-identical replay digests or the
// scheduler correctness contract. See docs/static-analysis.md for the
// rationale behind every rule.
//
// Rules (ids are stable; suppress with `// sjs-lint: allow(<id>): <reason>`
// on the offending line or the line above — the reason is mandatory):
//
//   unordered-iter   iteration over std::unordered_{map,set,multimap,multiset}
//                    in sched/, sim/, mc/, cloud/ — iteration order is
//                    implementation-defined and leaks into schedule decisions
//   ordered-set-hot-path
//                    std::set/std::multiset keyed on double (incl.
//                    pair<double, ...>) in sched/ or sim/ — node churn
//                    allocates per operation; use sched::ReadyQueue
//   banned-time      std::rand/srand/random_device/chrono *_clock::now/
//                    time(nullptr)/clock() outside util/rng + util/logging —
//                    all nondeterminism must flow through the seeded Rng
//   float-eq         ==/!= against a floating-point literal or a time-named
//                    operand — use the named helpers in util/fp.hpp so exact
//                    comparisons are auditable intent, not accidents
//   float-type       the `float` type anywhere under src/ — simulation state
//                    is double-only; float truncation shifts event timestamps
//   trace-exhaustive every TraceKind enumerator must be handled by the
//                    Chrome exporter's switch (src/obs/exporters.cpp)
//   include-hygiene  quoted includes must be module-rooted ("util/x.hpp", no
//                    "../"), headers must not include <iostream> or declare
//                    file-scope `using namespace`
//   header-guard     every header must open with #pragma once
//   raw-concurrency  std::thread/mutex/atomic/condition_variable (and other
//                    raw primitives) in src/serve/ or src/sched/ — cross-
//                    thread traffic must flow through conc::Channel /
//                    conc::ShardSet (src/conc/) or util/thread_pool so those
//                    layers stay auditable single-threaded
//   timer-wheel-bypass
//                    a kTimer event pushed into an event queue directly in
//                    src/sim/ — timers must be armed through the wheel
//                    (Engine::set_timer) so its generation-stamped slab owns
//                    the cancel/tombstone lifecycle
//   bad-suppression  an allow() comment with an unknown rule id or without
//                    a reason (this rule itself cannot be suppressed)
//
// Output: clickable `file:line:col: error: [rule] message` lines by default;
// `--format=github` (or GITHUB_ACTIONS=true in the environment) switches to
// GitHub workflow-annotation commands. Exit status is the number of
// diagnostics capped at 1 — i.e. 0 iff the tree is clean.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

struct Diagnostic {
  std::string file;  // path as given on the command line (relative to root)
  std::size_t line = 0;
  std::size_t col = 1;
  std::string rule;
  std::string message;
};

const std::vector<std::pair<const char*, const char*>> kRules = {
    {"unordered-iter",
     "iteration over unordered containers in scheduler/engine/MC hot paths"},
    {"ordered-set-hot-path",
     "std::set/multiset keyed on double in sched//sim/ (use sched::ReadyQueue)"},
    {"banned-time",
     "wall-clock / ambient randomness outside util/rng and util/logging"},
    {"float-eq", "raw ==/!= on floating-point values (use util/fp.hpp)"},
    {"float-type", "float type in simulation code (double-only state)"},
    {"trace-exhaustive",
     "TraceKind enumerator unhandled by the Chrome exporter"},
    {"include-hygiene",
     "non-module-rooted include, <iostream> in a header, or file-scope "
     "using-namespace in a header"},
    {"header-guard", "header missing #pragma once"},
    {"raw-concurrency",
     "raw std::thread/mutex/atomic in serve//sched/ (use conc::Channel / "
     "conc::ShardSet)"},
    {"timer-wheel-bypass",
     "kTimer event pushed past the timer wheel in sim/ (use "
     "Engine::set_timer)"},
    {"bad-suppression", "malformed sjs-lint allow() comment"},
};

bool is_known_rule(const std::string& id) {
  for (const auto& [name, desc] : kRules) {
    if (id == name) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Source model: raw lines, comment-stripped code lines, suppression table
// ---------------------------------------------------------------------------

struct Suppression {
  std::string rule;
  bool has_reason = false;
};

struct SourceFile {
  std::string path;       // as passed (for reporting)
  std::string rel;        // normalized path relative to the lint root
  std::vector<std::string> raw;   // raw lines, 0-based
  std::vector<std::string> code;  // comments and string contents blanked
  // line (1-based) -> suppressions written on that line
  std::map<std::size_t, std::vector<Suppression>> allows;
};

// Blanks comments and string/char literal contents while preserving column
// positions, so regex matches report real coordinates and never fire inside
// comments or literals. Handles // and /* */ (multi-line) plus basic escape
// sequences; raw strings are treated as plain strings (good enough: the rules
// never need to see string contents).
std::vector<std::string> strip_comments(const std::vector<std::string>& raw) {
  std::vector<std::string> out;
  out.reserve(raw.size());
  bool in_block = false;
  for (const std::string& line : raw) {
    std::string code(line.size(), ' ');
    std::size_t i = 0;
    while (i < line.size()) {
      if (in_block) {
        if (line.compare(i, 2, "*/") == 0) {
          in_block = false;
          i += 2;
        } else {
          ++i;
        }
        continue;
      }
      if (line.compare(i, 2, "//") == 0) break;  // rest is comment
      if (line.compare(i, 2, "/*") == 0) {
        in_block = true;
        i += 2;
        continue;
      }
      if (line[i] == '"' || line[i] == '\'') {
        const char quote = line[i];
        code[i] = quote;
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\') {
            i += 2;
            continue;
          }
          if (line[i] == quote) {
            code[i] = quote;
            ++i;
            break;
          }
          ++i;
        }
        continue;
      }
      code[i] = line[i];
      ++i;
    }
    out.push_back(std::move(code));
  }
  return out;
}

// Parses every `sjs-lint: allow(rule)[: reason]` comment in the file.
// Malformed forms are reported immediately as `bad-suppression`.
void collect_suppressions(SourceFile& file, std::vector<Diagnostic>& diags) {
  static const std::regex allow_re(
      R"(sjs-lint:\s*allow\(([A-Za-z0-9_-]*)\)\s*(:?)\s*(.*))");
  for (std::size_t i = 0; i < file.raw.size(); ++i) {
    const std::string& line = file.raw[i];
    if (line.find("sjs-lint:") == std::string::npos) continue;
    std::smatch m;
    if (!std::regex_search(line, m, allow_re)) {
      diags.push_back({file.path, i + 1, line.find("sjs-lint:") + 1,
                       "bad-suppression",
                       "unparsable sjs-lint comment; expected "
                       "`// sjs-lint: allow(<rule>): <reason>`"});
      continue;
    }
    const std::string rule = m[1];
    const bool has_colon = m[2].length() > 0;
    const std::string reason = m[3];
    if (!is_known_rule(rule)) {
      diags.push_back({file.path, i + 1, 1, "bad-suppression",
                       "allow() names unknown rule '" + rule + "'"});
      continue;
    }
    const bool has_reason =
        has_colon && reason.find_first_not_of(" \t") != std::string::npos;
    if (!has_reason) {
      diags.push_back({file.path, i + 1, 1, "bad-suppression",
                       "allow(" + rule +
                           ") needs a reason: `// sjs-lint: allow(" + rule +
                           "): <why this is safe>`"});
      continue;
    }
    file.allows[i + 1].push_back({rule, true});
  }
}

// A diagnostic on line L is suppressed by a valid allow(rule) on line L or
// L-1 (the conventional "comment above" position).
bool is_suppressed(const SourceFile& file, std::size_t line,
                   const std::string& rule) {
  for (std::size_t l : {line, line > 1 ? line - 1 : line}) {
    const auto it = file.allows.find(l);
    if (it == file.allows.end()) continue;
    for (const Suppression& s : it->second) {
      if (s.rule == rule) return true;
    }
  }
  return false;
}

void report(const SourceFile& file, std::size_t line, std::size_t col,
            const std::string& rule, const std::string& message,
            std::vector<Diagnostic>& diags) {
  if (is_suppressed(file, line, rule)) return;
  diags.push_back({file.path, line, col, rule, message});
}

// ---------------------------------------------------------------------------
// Path classification
// ---------------------------------------------------------------------------

bool path_in(const std::string& rel, const char* dir) {
  return rel.rfind(std::string("src/") + dir + "/", 0) == 0;
}

bool is_header(const std::string& rel) {
  return rel.size() > 4 && rel.compare(rel.size() - 4, 4, ".hpp") == 0;
}

bool is_hot_path_dir(const std::string& rel) {
  return path_in(rel, "sched") || path_in(rel, "sim") || path_in(rel, "mc") ||
         path_in(rel, "cloud");
}

bool is_rng_or_logging(const std::string& rel) {
  return rel.rfind("src/util/rng", 0) == 0 ||
         rel.rfind("src/util/logging", 0) == 0;
}

// ---------------------------------------------------------------------------
// Rule: unordered-iter
// ---------------------------------------------------------------------------

void check_unordered_iter(const SourceFile& file,
                          std::vector<Diagnostic>& diags) {
  if (!is_hot_path_dir(file.rel)) return;
  // Pass 1: names declared (locals or members) with an unordered type.
  static const std::regex decl_re(
      R"((?:std::)?unordered_(?:map|set|multimap|multiset)\s*<)");
  static const std::regex name_re(R"(>\s*&?\s*([A-Za-z_][A-Za-z0-9_]*)\s*[;={(])");
  std::set<std::string> unordered_names;
  for (const std::string& code : file.code) {
    std::smatch m;
    if (!std::regex_search(code, m, decl_re)) continue;
    // Find the declared name after the closing template bracket.
    std::smatch n;
    std::string tail = code.substr(static_cast<std::size_t>(m.position()));
    if (std::regex_search(tail, n, name_re)) {
      unordered_names.insert(n[1]);
    }
  }
  // Pass 2: range-for over an unordered-typed name or inline unordered
  // expression, and explicit .begin()/.cbegin() iteration.
  static const std::regex range_for_re(
      R"(for\s*\(.*:\s*([A-Za-z_][A-Za-z0-9_.\->]*)\s*\))");
  static const std::regex begin_re(
      R"(([A-Za-z_][A-Za-z0-9_]*)\s*\.\s*c?begin\s*\()");
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    const std::string& code = file.code[i];
    std::smatch m;
    if (std::regex_search(code, m, range_for_re)) {
      std::string target = m[1];
      // Last path component of `a.b->c` chains.
      const std::size_t cut = target.find_last_of(".>");
      std::string leaf = cut == std::string::npos ? target : target.substr(cut + 1);
      if (unordered_names.count(leaf) || unordered_names.count(target) ||
          code.find("unordered_") != std::string::npos) {
        report(file, i + 1, static_cast<std::size_t>(m.position()) + 1,
               "unordered-iter",
               "range-for over unordered container '" + target +
                   "': iteration order is implementation-defined and leaks "
                   "into schedule decisions / replay digests; use an ordered "
                   "container or sort the keys first",
               diags);
      }
    }
    for (auto it = std::sregex_iterator(code.begin(), code.end(), begin_re);
         it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[1];
      if (unordered_names.count(name)) {
        report(file, i + 1, static_cast<std::size_t>(it->position()) + 1,
               "unordered-iter",
               "iterator walk over unordered container '" + name +
                   "': iteration order is implementation-defined; use an "
                   "ordered container or sort the keys first",
               diags);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: ordered-set-hot-path
// ---------------------------------------------------------------------------

// std::set / std::multiset keyed on double (including pair<double, ...>) in
// the scheduler/engine hot paths: every insert/erase is a node allocation
// plus a pointer-chasing rebalance, and erase-by-value needs the exact key.
// sched::ReadyQueue provides the same deterministic (key, id) pop order over
// flat storage with O(log n) erase-by-id and no per-operation allocation.
void check_ordered_set_hot_path(const SourceFile& file,
                                std::vector<Diagnostic>& diags) {
  if (!path_in(file.rel, "sched") && !path_in(file.rel, "sim")) return;
  static const std::regex ordered_set_re(
      R"((?:std::)?(?:multi)?set\s*<\s*(?:(?:std::)?pair\s*<\s*double\b|double\b))");
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    const std::string& code = file.code[i];
    for (auto it =
             std::sregex_iterator(code.begin(), code.end(), ordered_set_re);
         it != std::sregex_iterator(); ++it) {
      const auto pos = static_cast<std::size_t>(it->position());
      // std::regex (ECMAScript) has no lookbehind: drop matches that are the
      // tail of a longer identifier (unordered_set, flat_set, ...).
      if (pos > 0 &&
          (std::isalnum(static_cast<unsigned char>(code[pos - 1])) ||
           code[pos - 1] == '_')) {
        continue;
      }
      report(file, i + 1, pos + 1, "ordered-set-hot-path",
             "ordered std::set/std::multiset keyed on double in a "
             "scheduler/engine hot path allocates a node per insert and "
             "rebalances on every churn; use sched::ReadyQueue "
             "(sched/ready_queue.hpp) — same deterministic (key, id) order "
             "over flat storage with O(log n) erase-by-id",
             diags);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: banned-time
// ---------------------------------------------------------------------------

void check_banned_time(const SourceFile& file, std::vector<Diagnostic>& diags) {
  if (is_rng_or_logging(file.rel)) return;
  struct Banned {
    std::regex re;
    const char* what;
  };
  static const std::vector<Banned> banned = {
      {std::regex(R"((?:std::)?\brand\s*\()"), "std::rand()"},
      {std::regex(R"((?:std::)?\bsrand\s*\()"), "std::srand()"},
      {std::regex(R"(\brandom_device\b)"), "std::random_device"},
      {std::regex(R"(\b\w*_clock\s*::\s*now\b)"), "std::chrono::*_clock::now"},
      {std::regex(R"(\btime\s*\(\s*(?:NULL|nullptr|0)\s*\))"),
       "time(nullptr)"},
      {std::regex(R"(\bclock\s*\(\s*\))"), "clock()"},
      {std::regex(R"(\bgettimeofday\s*\()"), "gettimeofday()"},
      {std::regex(R"(\bclock_gettime\s*\()"), "clock_gettime()"},
      {std::regex(R"(\btimespec_get\s*\()"), "timespec_get()"},
  };
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    const std::string& code = file.code[i];
    for (const Banned& b : banned) {
      std::smatch m;
      if (std::regex_search(code, m, b.re)) {
        report(file, i + 1, static_cast<std::size_t>(m.position()) + 1,
               "banned-time",
               std::string(b.what) +
                   " is nondeterministic; all randomness/time must flow "
                   "through the seeded sjs::Rng (util/rng.hpp)",
               diags);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: float-eq
// ---------------------------------------------------------------------------

// Flags `==`/`!=` where an operand is a floating-point literal or an
// identifier with a time-like name. Exact comparison of derived doubles is
// almost always a determinism bug (two algebraically equal expressions need
// not be bit-equal); where exactness IS the contract (digest folding,
// piecewise boundaries), util/fp.hpp names that intent.
void check_float_eq(const SourceFile& file, std::vector<Diagnostic>& diags) {
  static const std::regex fp_lit_cmp(
      R"(([0-9]+\.[0-9]+(?:[eE][+-]?[0-9]+)?f?\s*(?:==|!=))|((?:==|!=)\s*[0-9]+\.[0-9]+(?:[eE][+-]?[0-9]+)?f?))");
  static const std::regex time_cmp(
      R"(([A-Za-z_][A-Za-z0-9_]*)\s*(?:==|!=)\s*([A-Za-z_][A-Za-z0-9_.]*)\b)");
  static const std::regex time_name(
      R"(^(?:.*_time|time_?[a-z]*|now|t_now|deadline|deadline_|expiry|expiry_|last_advance_)$)");
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    const std::string& code = file.code[i];
    std::smatch m;
    if (std::regex_search(code, m, fp_lit_cmp)) {
      report(file, i + 1, static_cast<std::size_t>(m.position()) + 1,
             "float-eq",
             "raw ==/!= against a floating-point literal; use "
             "sjs::fp::is_zero / sjs::fp::exact_eq / sjs::fp::near "
             "(util/fp.hpp) so the comparison's intent is explicit",
             diags);
      continue;  // one report per line is enough
    }
    for (auto it = std::sregex_iterator(code.begin(), code.end(), time_cmp);
         it != std::sregex_iterator(); ++it) {
      const std::string lhs = (*it)[1];
      std::string rhs = (*it)[2];
      const std::size_t cut = rhs.find_last_of('.');
      if (cut != std::string::npos) rhs = rhs.substr(cut + 1);
      if (std::regex_match(lhs, time_name) || std::regex_match(rhs, time_name)) {
        report(file, i + 1, static_cast<std::size_t>(it->position()) + 1,
               "float-eq",
               "raw ==/!= on simulation-time operands ('" + lhs + "' vs '" +
                   (*it)[2].str() +
                   "'); use sjs::fp::exact_eq/near (util/fp.hpp) to name "
                   "whether exact bit-equality is the contract",
               diags);
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: float-type
// ---------------------------------------------------------------------------

void check_float_type(const SourceFile& file, std::vector<Diagnostic>& diags) {
  static const std::regex float_re(R"(\bfloat\b)");
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    std::smatch m;
    if (std::regex_search(file.code[i], m, float_re)) {
      report(file, i + 1, static_cast<std::size_t>(m.position()) + 1,
             "float-type",
             "`float` in simulation code: state and signatures are "
             "double-only (float truncation shifts event timestamps and "
             "breaks replay digests); use double",
             diags);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: trace-exhaustive (cross-file)
// ---------------------------------------------------------------------------

void check_trace_exhaustive(const std::vector<SourceFile>& files,
                            std::vector<Diagnostic>& diags) {
  const SourceFile* enum_file = nullptr;
  const SourceFile* exporter = nullptr;
  for (const SourceFile& f : files) {
    if (f.rel == "src/obs/trace_event.hpp") enum_file = &f;
    if (f.rel == "src/obs/exporters.cpp") exporter = &f;
  }
  if (enum_file == nullptr || exporter == nullptr) return;

  // Collect enumerators of `enum class TraceKind`.
  std::vector<std::pair<std::string, std::size_t>> kinds;  // name, decl line
  bool in_enum = false;
  static const std::regex enum_open(R"(enum\s+class\s+TraceKind\b)");
  static const std::regex member_re(R"(^\s*(k[A-Za-z0-9_]+)\s*(?:=[^,]*)?,?)");
  for (std::size_t i = 0; i < enum_file->code.size(); ++i) {
    const std::string& code = enum_file->code[i];
    if (!in_enum) {
      if (std::regex_search(code, enum_open)) in_enum = true;
      continue;
    }
    if (code.find('}') != std::string::npos) break;
    std::smatch m;
    if (std::regex_search(code, m, member_re)) kinds.emplace_back(m[1], i + 1);
  }

  // Every kind must appear as `TraceKind::kX` somewhere in the exporter.
  std::ostringstream joined;
  for (const auto& [kind, decl_line] : kinds) {
    const std::string needle = "TraceKind::" + kind;
    bool handled = false;
    for (const std::string& code : exporter->code) {
      if (code.find(needle) != std::string::npos) {
        handled = true;
        break;
      }
    }
    if (!handled) {
      report(*exporter, 1, 1, "trace-exhaustive",
             "TraceKind::" + kind + " (declared at " + enum_file->path + ":" +
                 std::to_string(decl_line) +
                 ") is not handled by the Chrome exporter; every event kind "
                 "must be routed (or explicitly ignored) in the switch",
             diags);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: include-hygiene
// ---------------------------------------------------------------------------

const std::set<std::string> kModuleDirs = {
    "util",  "stats",   "capacity", "jobs", "obs",   "sim",
    "sched", "offline", "theory",   "mc",   "cloud", "serve", "conc"};

void check_include_hygiene(const SourceFile& file,
                           std::vector<Diagnostic>& diags) {
  static const std::regex quoted_re(R"(^\s*#\s*include\s*"([^"]+)\")");
  static const std::regex angled_re(R"(^\s*#\s*include\s*<([^>]+)>)");
  static const std::regex using_ns_re(R"(^\s*using\s+namespace\s+)");
  const bool header = is_header(file.rel);
  for (std::size_t i = 0; i < file.raw.size(); ++i) {
    const std::string& line = file.raw[i];
    std::smatch m;
    if (std::regex_search(line, m, quoted_re)) {
      const std::string inc = m[1];
      const std::size_t slash = inc.find('/');
      const std::string top =
          slash == std::string::npos ? std::string() : inc.substr(0, slash);
      if (inc.rfind("../", 0) == 0 || slash == std::string::npos ||
          kModuleDirs.count(top) == 0) {
        report(file, i + 1, 1, "include-hygiene",
               "quoted include \"" + inc +
                   "\" must be module-rooted (e.g. \"util/rng.hpp\"); "
                   "relative and bare includes break when files move and "
                   "defeat include-what-you-use auditing",
               diags);
      }
    } else if (header && std::regex_search(line, m, angled_re)) {
      if (std::string(m[1]) == "iostream") {
        report(file, i + 1, 1, "include-hygiene",
               "<iostream> in a header drags the static iostream "
               "constructors into every TU; include <ostream>/<istream> in "
               "the header and <iostream> only in .cpp files",
               diags);
      }
    }
    if (header && std::regex_search(file.code[i], using_ns_re)) {
      report(file, i + 1, 1, "include-hygiene",
             "file-scope `using namespace` in a header pollutes every "
             "includer; qualify names instead",
             diags);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: header-guard
// ---------------------------------------------------------------------------

void check_header_guard(const SourceFile& file,
                        std::vector<Diagnostic>& diags) {
  if (!is_header(file.rel)) return;
  static const std::regex pragma_once_re(R"(^\s*#\s*pragma\s+once\b)");
  for (const std::string& line : file.code) {
    if (std::regex_search(line, pragma_once_re)) return;
  }
  report(file, 1, 1, "header-guard",
         "header is missing `#pragma once` (double inclusion would be an "
         "ODR hazard)",
         diags);
}

// ---------------------------------------------------------------------------
// Rule: raw-concurrency
// ---------------------------------------------------------------------------

// The sharded admission plane's thread-safety argument is structural: every
// cross-thread interaction flows through conc::Channel / conc::ShardSet
// (src/conc/), so serve/ and sched/ code can be audited as single-threaded.
// A raw primitive smuggled into either layer silently reopens the data-race
// surface the TSan CI job is meant to have closed — it must either move
// behind conc/ or carry an audited suppression.
void check_raw_concurrency(const SourceFile& file,
                           std::vector<Diagnostic>& diags) {
  if (!path_in(file.rel, "serve") && !path_in(file.rel, "sched")) return;
  static const std::regex prim_re(
      R"(\bstd\s*::\s*(thread|jthread|mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|shared_mutex|shared_timed_mutex|condition_variable(?:_any)?|atomic(?:_flag|_ref)?|lock_guard|unique_lock|scoped_lock|shared_lock|counting_semaphore|binary_semaphore|latch|barrier|future|promise|async)\b)");
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    const std::string& code = file.code[i];
    for (auto it = std::sregex_iterator(code.begin(), code.end(), prim_re);
         it != std::sregex_iterator(); ++it) {
      report(file, i + 1, static_cast<std::size_t>(it->position()) + 1,
             "raw-concurrency",
             "std::" + (*it)[1].str() +
                 " in src/serve//src/sched/: cross-thread traffic must flow "
                 "through conc::Channel / conc::ShardSet (src/conc/) or "
                 "util/thread_pool so the layer stays auditable "
                 "single-threaded",
             diags);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: timer-wheel-bypass
// ---------------------------------------------------------------------------

// Timer events must enter the engine through TimerWheel::arm (wrapped by
// Engine::set_timer): a kTimer event pushed straight into the static queue
// or the completion heap bypasses the wheel's generation-stamped slab, so
// cancel_timer could not tombstone it and the lazy dead-event compaction
// accounting would drift — both are digest-visible failures. The wheel's
// own implementation files are the one place allowed to queue timer nodes.
void check_timer_wheel_bypass(const SourceFile& file,
                              std::vector<Diagnostic>& diags) {
  if (!path_in(file.rel, "sim")) return;
  if (file.rel.rfind("src/sim/timer_wheel.", 0) == 0) return;
  static const std::regex push_re(
      R"(\b(push_event|push_back|emplace_back|push_heap|emplace|insert)\s*\()");
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    const std::string& code = file.code[i];
    if (code.find("kTimer") == std::string::npos) continue;
    std::smatch m;
    if (std::regex_search(code, m, push_re)) {
      report(file, i + 1, static_cast<std::size_t>(m.position()) + 1,
             "timer-wheel-bypass",
             "kTimer event pushed into an event queue directly; timers must "
             "be armed through Engine::set_timer so the wheel's "
             "generation-stamped slab (sim/timer_wheel.hpp) owns the "
             "cancel/tombstone lifecycle the replay digest depends on",
             diags);
    }
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

std::optional<SourceFile> load_file(const fs::path& path,
                                    const fs::path& root) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  SourceFile file;
  file.path = path.generic_string();
  std::error_code ec;
  const fs::path rel = fs::relative(path, root, ec);
  file.rel = ec ? path.generic_string() : rel.generic_string();
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    file.raw.push_back(line);
  }
  file.code = strip_comments(file.raw);
  return file;
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

void usage() {
  std::fprintf(stderr,
               "usage: sjs_lint [--root <dir>] [--format=plain|github] "
               "[--list-rules] [paths...]\n"
               "  Lints .cpp/.hpp files (default: <root>/src). Paths may be "
               "files or directories.\n");
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::string format = "plain";
  std::vector<fs::path> inputs;
  if (const char* env = std::getenv("GITHUB_ACTIONS");
      env != nullptr && std::strcmp(env, "true") == 0) {
    format = "github";
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    }
    if (arg == "--list-rules") {
      for (const auto& [name, desc] : kRules) {
        std::printf("%-18s %s\n", name, desc);
      }
      return 0;
    }
    if (arg == "--root") {
      if (i + 1 >= argc) {
        usage();
        return 2;
      }
      root = argv[++i];
      continue;
    }
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "plain" && format != "github") {
        std::fprintf(stderr, "sjs_lint: unknown format '%s'\n",
                     format.c_str());
        return 2;
      }
      continue;
    }
    inputs.emplace_back(arg);
  }
  if (inputs.empty()) inputs.push_back(root / "src");

  std::vector<fs::path> paths;
  for (const fs::path& input : inputs) {
    std::error_code ec;
    if (fs::is_directory(input, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(input)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          paths.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(input, ec)) {
      paths.push_back(input);
    } else {
      std::fprintf(stderr, "sjs_lint: cannot read %s\n",
                   input.generic_string().c_str());
      return 2;
    }
  }
  std::sort(paths.begin(), paths.end());

  std::vector<SourceFile> files;
  std::vector<Diagnostic> diags;
  for (const fs::path& p : paths) {
    auto file = load_file(p, root);
    if (!file) {
      std::fprintf(stderr, "sjs_lint: cannot read %s\n",
                   p.generic_string().c_str());
      return 2;
    }
    collect_suppressions(*file, diags);
    files.push_back(std::move(*file));
  }

  for (const SourceFile& file : files) {
    check_unordered_iter(file, diags);
    check_ordered_set_hot_path(file, diags);
    check_banned_time(file, diags);
    check_float_eq(file, diags);
    check_float_type(file, diags);
    check_include_hygiene(file, diags);
    check_header_guard(file, diags);
    check_raw_concurrency(file, diags);
    check_timer_wheel_bypass(file, diags);
  }
  check_trace_exhaustive(files, diags);

  std::sort(diags.begin(), diags.end(), [](const Diagnostic& a,
                                           const Diagnostic& b) {
    return std::tie(a.file, a.line, a.col, a.rule) <
           std::tie(b.file, b.line, b.col, b.rule);
  });

  for (const Diagnostic& d : diags) {
    if (format == "github") {
      std::printf("::error file=%s,line=%zu,col=%zu,title=sjs_lint %s::%s\n",
                  d.file.c_str(), d.line, d.col, d.rule.c_str(),
                  d.message.c_str());
    } else {
      std::printf("%s:%zu:%zu: error: [%s] %s\n", d.file.c_str(), d.line,
                  d.col, d.rule.c_str(), d.message.c_str());
    }
  }
  if (!diags.empty()) {
    std::fprintf(stderr, "sjs_lint: %zu diagnostic(s) in %zu file(s)\n",
                 diags.size(), files.size());
    return 1;
  }
  return 0;
}
