// sjs_lint — repo-specific determinism/contract analyzer (CLI).
//
// This file is the thin argv shim over the two-phase analyzer library in
// tools/lint/: a lexer (raw strings, splices, comment/string blanking), a
// per-file declaration/definition indexer, the quoted-include graph, a
// name-resolved cross-TU call graph, and a taint-propagation engine that
// the graph rules run on. Phase 1 (per-file token/regex rules) depends only
// on a file's bytes and is cached on disk keyed by content hash; phase 2
// (cross-TU rules) is recomputed from the indices every run. See
// docs/static-analysis.md for the architecture and the rationale behind
// every rule.
//
// Rules (ids are stable; suppress with an `sjs-lint` comment of the form
// `allow(<id>): <reason>` on the offending line or the line above — the
// reason is mandatory):
//
//   unordered-iter   iteration over std::unordered_{map,set,multimap,multiset}
//                    in sched/, sim/, mc/, cloud/ — iteration order is
//                    implementation-defined and leaks into schedule decisions
//   ordered-set-hot-path
//                    std::set/std::multiset keyed on double (incl.
//                    pair<double, ...>) in sched/ or sim/ — node churn
//                    allocates per operation; use sched::ReadyQueue
//   banned-time      std::rand/srand/random_device/chrono *_clock::now/
//                    time(nullptr)/clock() outside util/rng + util/logging —
//                    all nondeterminism must flow through the seeded Rng
//   float-eq         ==/!= against a floating-point literal or a time-named
//                    operand — use the named helpers in util/fp.hpp so exact
//                    comparisons are auditable intent, not accidents
//   float-type       the `float` type anywhere under src/ — simulation state
//                    is double-only; float truncation shifts event timestamps
//   trace-exhaustive every TraceKind enumerator must be handled by the
//                    Chrome exporter's switch (src/obs/exporters.cpp)
//   include-hygiene  quoted includes must be module-rooted ("util/x.hpp", no
//                    "../"), headers must not include <iostream> or declare
//                    file-scope `using namespace`
//   header-guard     every header must open with #pragma once
//   raw-concurrency  std::thread/mutex/atomic/condition_variable (and other
//                    raw primitives) in src/serve/ or src/sched/ — cross-
//                    thread traffic must flow through conc::Channel /
//                    conc::ShardSet (src/conc/) or util/thread_pool so those
//                    layers stay auditable single-threaded
//   timer-wheel-bypass
//                    a kTimer event pushed into an event queue directly in
//                    src/sim/ — timers must be armed through the wheel
//                    (Engine::set_timer) so its generation-stamped slab owns
//                    the cancel/tombstone lifecycle
//   bad-suppression  an allow() comment with an unknown rule id or without
//                    a reason (this rule itself cannot be suppressed)
//   transitive-banned-time
//                    the function's call closure reaches a banned clock/
//                    entropy read (the seam the per-file rule cannot see);
//                    util/rng and serve/clock.* are the sanctioned sinks
//   alloc-in-hot-path
//                    an allocation-capable operation (new/make_unique/
//                    push_back/resize/std::function...) in a function
//                    reachable from a `// sjs-hot-path-root` annotation
//   channel-discipline
//                    a conc::Channel::reserve whose enclosing function has a
//                    token-level path that leaves without commit/abort —
//                    an unresolved reservation wedges the consumer
//   include-cycle    a cycle in the module-level quoted-include graph
//
// Output: clickable `file:line:col: error: [rule] message` lines by default;
// `--format=github` (or GITHUB_ACTIONS=true in the environment) switches to
// GitHub workflow-annotation commands. `--explain=<rule>` adds `note:` lines
// carrying the call chain behind every diagnostic of that rule. Exit status
// is the number of diagnostics capped at 1 — i.e. 0 iff the tree is clean.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "lint/analyzer.hpp"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: sjs_lint [--root <dir>] [--format=plain|github] [--list-rules]\n"
      "                [--cache=<file>] [--explain=<rule>] [--report=alloc]\n"
      "                [--max=<n>] [paths...]\n"
      "  Lints .cpp/.hpp files (default: <root>/src). Paths may be files or\n"
      "  directories; suppression paths in diagnostics are relative to\n"
      "  --root.\n"
      "  --cache=<file>    reuse per-file symbol indices across runs (keyed\n"
      "                    on content hashes; safe under any edit)\n"
      "  --explain=<rule>  print the call chain behind each <rule> finding\n"
      "  --report=alloc    print the full allocation-in-hot-path work-list\n"
      "                    (audited suppressions included) and exit 0\n"
      "  --max=<n>         with --report=alloc: exit 1 when the work-list\n"
      "                    exceeds n sites (the ratchet gate; --max=0 means\n"
      "                    the hot path must be allocation-free)\n");
}

}  // namespace

int main(int argc, char** argv) {
  using sjs::lint::AnalyzerOptions;
  using sjs::lint::Diagnostic;

  AnalyzerOptions options;
  std::string format = "plain";
  std::string explain;
  bool report_alloc = false;
  long max_alloc = -1;  // <0: report only, no gate
  if (const char* env = std::getenv("GITHUB_ACTIONS");
      env != nullptr && std::strcmp(env, "true") == 0) {
    format = "github";
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    }
    if (arg == "--list-rules") {
      for (const auto& [name, desc] : sjs::lint::rule_table()) {
        std::printf("%-22s %s\n", name, desc);
      }
      return 0;
    }
    if (arg == "--root") {
      if (i + 1 >= argc) {
        usage();
        return 2;
      }
      options.root = argv[++i];
      continue;
    }
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "plain" && format != "github") {
        std::fprintf(stderr, "sjs_lint: unknown format '%s'\n",
                     format.c_str());
        return 2;
      }
      continue;
    }
    if (arg.rfind("--cache=", 0) == 0) {
      options.cache_path = arg.substr(8);
      continue;
    }
    if (arg.rfind("--explain=", 0) == 0) {
      explain = arg.substr(10);
      if (!sjs::lint::is_known_rule(explain)) {
        std::fprintf(stderr, "sjs_lint: --explain names unknown rule '%s'\n",
                     explain.c_str());
        return 2;
      }
      continue;
    }
    if (arg == "--report=alloc") {
      report_alloc = true;
      continue;
    }
    if (arg.rfind("--max=", 0) == 0) {
      char* end = nullptr;
      max_alloc = std::strtol(arg.c_str() + 6, &end, 10);
      if (end == nullptr || *end != '\0' || max_alloc < 0) {
        std::fprintf(stderr, "sjs_lint: --max needs a non-negative integer\n");
        return 2;
      }
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "sjs_lint: unknown option '%s'\n", arg.c_str());
      usage();
      return 2;
    }
    options.inputs.emplace_back(arg);
  }

  const sjs::lint::AnalyzerResult result = sjs::lint::run_analyzer(options);
  for (const std::string& err : result.io_errors) {
    std::fprintf(stderr, "sjs_lint: cannot read %s\n", err.c_str());
  }
  if (!result.io_errors.empty()) return 2;

  if (report_alloc) {
    for (const auto& e : result.alloc_report) {
      std::printf("%s:%zu: %s in '%s'%s  chain: %s\n", e.file.c_str(), e.line,
                  e.op.c_str(), e.function.c_str(),
                  e.suppressed ? " [suppressed]" : "", e.chain.c_str());
    }
    std::fprintf(stderr,
                 "sjs_lint: %zu hot-path allocation site(s) (%zu suppressed) "
                 "in %zu file(s)\n",
                 result.alloc_report.size(),
                 static_cast<std::size_t>(std::count_if(
                     result.alloc_report.begin(), result.alloc_report.end(),
                     [](const auto& e) { return e.suppressed; })),
                 result.files_analyzed);
    if (max_alloc >= 0 &&
        result.alloc_report.size() > static_cast<std::size_t>(max_alloc)) {
      std::fprintf(stderr,
                   "sjs_lint: allocation ratchet exceeded: %zu site(s) > "
                   "--max=%ld\n",
                   result.alloc_report.size(), max_alloc);
      return 1;
    }
    return 0;
  }
  if (max_alloc >= 0) {
    std::fprintf(stderr, "sjs_lint: --max requires --report=alloc\n");
    return 2;
  }

  for (const Diagnostic& d : result.diags) {
    if (format == "github") {
      std::printf("::error file=%s,line=%zu,col=%zu,title=sjs_lint %s::%s\n",
                  d.file.c_str(), d.line, d.col, d.rule.c_str(),
                  d.message.c_str());
    } else {
      std::printf("%s:%zu:%zu: error: [%s] %s\n", d.file.c_str(), d.line,
                  d.col, d.rule.c_str(), d.message.c_str());
    }
    if (!explain.empty() && d.rule == explain) {
      for (const std::string& hop : d.chain) {
        std::printf("    note: %s\n", hop.c_str());
      }
    }
  }
  if (!result.diags.empty()) {
    std::fprintf(stderr, "sjs_lint: %zu diagnostic(s) in %zu file(s)\n",
                 result.diags.size(), result.files_analyzed);
    return 1;
  }
  return 0;
}
