// On-disk symbol-index cache for phase 1.
//
// Keyed on (relative path, FNV-1a content hash) — deliberately content-based
// rather than mtime-based so the cache is sound under checkout churn, CI
// restores, and clock skew. A hit replays both the serialized FileIndex and
// the file's phase-1 diagnostics; a miss (new file, edited file, or a cache
// written by a different rule-set version) falls through to a fresh index.
// Suppression tables and bad-suppression checks are always recomputed from
// the source — they are cheap and the graph rules consult them per edge.
//
// The store is a single text file; unreadable or version-mismatched caches
// are ignored wholesale (never an error: the cache is an accelerator, not a
// correctness input).
#pragma once

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "lint/diagnostics.hpp"
#include "lint/index.hpp"

namespace sjs::lint {

struct CacheEntry {
  std::uint64_t hash = 0;
  FileIndex index;
  // Phase-1 diagnostics (file field stores rel; rewritten to the
  // command-line path on replay).
  std::vector<Diagnostic> diags;
};

class IndexCache {
 public:
  // Loads the store at `path`. Missing/corrupt/old-version files yield an
  // empty cache.
  void load(const std::filesystem::path& path);

  // Entry for `rel` if present with a matching hash, else nullptr.
  const CacheEntry* lookup(const std::string& rel, std::uint64_t hash) const;

  void store(const std::string& rel, CacheEntry entry);

  // Writes every stored entry back to `path`. Best-effort: failures are
  // reported on stderr but never fail the lint run.
  void save(const std::filesystem::path& path) const;

  std::size_t hits = 0;
  std::size_t misses = 0;

 private:
  std::map<std::string, CacheEntry> entries_;
};

}  // namespace sjs::lint
