#include "lint/call_graph.hpp"

namespace sjs::lint {

namespace {

// `qualified` ends with the written chain `qual` on a `::` boundary:
// qual "Engine::run" matches "sjs::sim::Engine::run" but not
// "sjs::sim::MultiEngine::run".
bool qualified_suffix_match(const std::string& qualified,
                            const std::string& qual) {
  if (qualified.size() < qual.size()) return false;
  if (qualified.compare(qualified.size() - qual.size(), qual.size(), qual) !=
      0) {
    return false;
  }
  if (qualified.size() == qual.size()) return true;
  const std::size_t cut = qualified.size() - qual.size();
  return cut >= 2 && qualified[cut - 1] == ':' && qualified[cut - 2] == ':';
}

}  // namespace

const std::vector<std::size_t>& CallGraph::named(
    const std::string& name) const {
  static const std::vector<std::size_t> kEmpty;
  const auto it = by_name.find(name);
  return it == by_name.end() ? kEmpty : it->second;
}

CallGraph build_call_graph(const std::vector<FileIndex>& indices) {
  CallGraph g;
  for (std::size_t f = 0; f < indices.size(); ++f) {
    for (const FunctionDef& fn : indices[f].funcs) {
      g.by_name[fn.name].push_back(g.nodes.size());
      g.nodes.push_back({&fn, f});
    }
  }
  g.out.resize(g.nodes.size());
  g.in.resize(g.nodes.size());
  for (std::size_t caller = 0; caller < g.nodes.size(); ++caller) {
    const FunctionDef& fn = *g.nodes[caller].def;
    for (const CallSite& call : fn.calls) {
      const auto it = g.by_name.find(call.name);
      if (it == g.by_name.end()) continue;
      for (const std::size_t callee : it->second) {
        if (!call.qual.empty() &&
            !qualified_suffix_match(g.nodes[callee].def->qualified,
                                    call.qual)) {
          continue;
        }
        const std::size_t e = g.edges.size();
        g.edges.push_back({caller, callee, &call});
        g.out[caller].push_back(e);
        g.in[callee].push_back(e);
      }
    }
  }
  return g;
}

std::vector<std::size_t> Reachability::chain_to_seed(const CallGraph& g,
                                                     std::size_t node,
                                                     bool forward) const {
  std::vector<std::size_t> chain;
  std::size_t n = node;
  chain.push_back(n);
  while (via_edge[n] != kUnreached) {
    const CallGraph::Edge& e = g.edges[via_edge[n]];
    n = forward ? e.caller : e.callee;
    chain.push_back(n);
    if (chain.size() > g.nodes.size()) break;  // defensive: no cycles expected
  }
  return chain;
}

}  // namespace sjs::lint
