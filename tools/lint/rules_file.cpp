// Phase-1 (per-file) rules, ported unchanged from the original single-pass
// sjs_lint. Diagnostic text, coordinates, and firing conditions are frozen:
// tests/lint_test.cpp diffs the output on the fixture tree against
// tests/lint_fixtures/legacy_golden.txt, so any drift here is a test
// failure, not a silent behavior change.
#include <cctype>
#include <regex>
#include <set>

#include "lint/rules.hpp"

namespace sjs::lint {

// ---------------------------------------------------------------------------
// Rule: unordered-iter
// ---------------------------------------------------------------------------

void check_unordered_iter(const SourceFile& file,
                          std::vector<Diagnostic>& diags) {
  if (!is_hot_path_dir(file.rel)) return;
  // Pass 1: names declared (locals or members) with an unordered type.
  static const std::regex decl_re(
      R"((?:std::)?unordered_(?:map|set|multimap|multiset)\s*<)");
  static const std::regex name_re(R"(>\s*&?\s*([A-Za-z_][A-Za-z0-9_]*)\s*[;={(])");
  std::set<std::string> unordered_names;
  for (const std::string& code : file.code) {
    std::smatch m;
    if (!std::regex_search(code, m, decl_re)) continue;
    // Find the declared name after the closing template bracket.
    std::smatch n;
    std::string tail = code.substr(static_cast<std::size_t>(m.position()));
    if (std::regex_search(tail, n, name_re)) {
      unordered_names.insert(n[1]);
    }
  }
  // Pass 2: range-for over an unordered-typed name or inline unordered
  // expression, and explicit .begin()/.cbegin() iteration.
  static const std::regex range_for_re(
      R"(for\s*\(.*:\s*([A-Za-z_][A-Za-z0-9_.\->]*)\s*\))");
  static const std::regex begin_re(
      R"(([A-Za-z_][A-Za-z0-9_]*)\s*\.\s*c?begin\s*\()");
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    const std::string& code = file.code[i];
    std::smatch m;
    if (std::regex_search(code, m, range_for_re)) {
      std::string target = m[1];
      // Last path component of `a.b->c` chains.
      const std::size_t cut = target.find_last_of(".>");
      std::string leaf = cut == std::string::npos ? target : target.substr(cut + 1);
      if (unordered_names.count(leaf) || unordered_names.count(target) ||
          code.find("unordered_") != std::string::npos) {
        report(file, i + 1, static_cast<std::size_t>(m.position()) + 1,
               "unordered-iter",
               "range-for over unordered container '" + target +
                   "': iteration order is implementation-defined and leaks "
                   "into schedule decisions / replay digests; use an ordered "
                   "container or sort the keys first",
               diags);
      }
    }
    for (auto it = std::sregex_iterator(code.begin(), code.end(), begin_re);
         it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[1];
      if (unordered_names.count(name)) {
        report(file, i + 1, static_cast<std::size_t>(it->position()) + 1,
               "unordered-iter",
               "iterator walk over unordered container '" + name +
                   "': iteration order is implementation-defined; use an "
                   "ordered container or sort the keys first",
               diags);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: ordered-set-hot-path
// ---------------------------------------------------------------------------

// std::set / std::multiset keyed on double (including pair<double, ...>) in
// the scheduler/engine hot paths: every insert/erase is a node allocation
// plus a pointer-chasing rebalance, and erase-by-value needs the exact key.
// sched::ReadyQueue provides the same deterministic (key, id) pop order over
// flat storage with O(log n) erase-by-id and no per-operation allocation.
void check_ordered_set_hot_path(const SourceFile& file,
                                std::vector<Diagnostic>& diags) {
  if (!path_in(file.rel, "sched") && !path_in(file.rel, "sim")) return;
  static const std::regex ordered_set_re(
      R"((?:std::)?(?:multi)?set\s*<\s*(?:(?:std::)?pair\s*<\s*double\b|double\b))");
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    const std::string& code = file.code[i];
    for (auto it =
             std::sregex_iterator(code.begin(), code.end(), ordered_set_re);
         it != std::sregex_iterator(); ++it) {
      const auto pos = static_cast<std::size_t>(it->position());
      // std::regex (ECMAScript) has no lookbehind: drop matches that are the
      // tail of a longer identifier (unordered_set, flat_set, ...).
      if (pos > 0 &&
          (std::isalnum(static_cast<unsigned char>(code[pos - 1])) ||
           code[pos - 1] == '_')) {
        continue;
      }
      report(file, i + 1, pos + 1, "ordered-set-hot-path",
             "ordered std::set/std::multiset keyed on double in a "
             "scheduler/engine hot path allocates a node per insert and "
             "rebalances on every churn; use sched::ReadyQueue "
             "(sched/ready_queue.hpp) — same deterministic (key, id) order "
             "over flat storage with O(log n) erase-by-id",
             diags);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: banned-time
// ---------------------------------------------------------------------------

void check_banned_time(const SourceFile& file, std::vector<Diagnostic>& diags) {
  if (is_rng_or_logging(file.rel)) return;
  struct Banned {
    std::regex re;
    const char* what;
  };
  static const std::vector<Banned> banned = {
      {std::regex(R"((?:std::)?\brand\s*\()"), "std::rand()"},
      {std::regex(R"((?:std::)?\bsrand\s*\()"), "std::srand()"},
      {std::regex(R"(\brandom_device\b)"), "std::random_device"},
      {std::regex(R"(\b\w*_clock\s*::\s*now\b)"), "std::chrono::*_clock::now"},
      {std::regex(R"(\btime\s*\(\s*(?:NULL|nullptr|0)\s*\))"),
       "time(nullptr)"},
      {std::regex(R"(\bclock\s*\(\s*\))"), "clock()"},
      {std::regex(R"(\bgettimeofday\s*\()"), "gettimeofday()"},
      {std::regex(R"(\bclock_gettime\s*\()"), "clock_gettime()"},
      {std::regex(R"(\btimespec_get\s*\()"), "timespec_get()"},
  };
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    const std::string& code = file.code[i];
    for (const Banned& b : banned) {
      std::smatch m;
      if (std::regex_search(code, m, b.re)) {
        report(file, i + 1, static_cast<std::size_t>(m.position()) + 1,
               "banned-time",
               std::string(b.what) +
                   " is nondeterministic; all randomness/time must flow "
                   "through the seeded sjs::Rng (util/rng.hpp)",
               diags);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: float-eq
// ---------------------------------------------------------------------------

// Flags `==`/`!=` where an operand is a floating-point literal or an
// identifier with a time-like name. Exact comparison of derived doubles is
// almost always a determinism bug (two algebraically equal expressions need
// not be bit-equal); where exactness IS the contract (digest folding,
// piecewise boundaries), util/fp.hpp names that intent.
void check_float_eq(const SourceFile& file, std::vector<Diagnostic>& diags) {
  static const std::regex fp_lit_cmp(
      R"(([0-9]+\.[0-9]+(?:[eE][+-]?[0-9]+)?f?\s*(?:==|!=))|((?:==|!=)\s*[0-9]+\.[0-9]+(?:[eE][+-]?[0-9]+)?f?))");
  static const std::regex time_cmp(
      R"(([A-Za-z_][A-Za-z0-9_]*)\s*(?:==|!=)\s*([A-Za-z_][A-Za-z0-9_.]*)\b)");
  static const std::regex time_name(
      R"(^(?:.*_time|time_?[a-z]*|now|t_now|deadline|deadline_|expiry|expiry_|last_advance_)$)");
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    const std::string& code = file.code[i];
    std::smatch m;
    if (std::regex_search(code, m, fp_lit_cmp)) {
      report(file, i + 1, static_cast<std::size_t>(m.position()) + 1,
             "float-eq",
             "raw ==/!= against a floating-point literal; use "
             "sjs::fp::is_zero / sjs::fp::exact_eq / sjs::fp::near "
             "(util/fp.hpp) so the comparison's intent is explicit",
             diags);
      continue;  // one report per line is enough
    }
    for (auto it = std::sregex_iterator(code.begin(), code.end(), time_cmp);
         it != std::sregex_iterator(); ++it) {
      const std::string lhs = (*it)[1];
      std::string rhs = (*it)[2];
      const std::size_t cut = rhs.find_last_of('.');
      if (cut != std::string::npos) rhs = rhs.substr(cut + 1);
      if (std::regex_match(lhs, time_name) || std::regex_match(rhs, time_name)) {
        report(file, i + 1, static_cast<std::size_t>(it->position()) + 1,
               "float-eq",
               "raw ==/!= on simulation-time operands ('" + lhs + "' vs '" +
                   (*it)[2].str() +
                   "'); use sjs::fp::exact_eq/near (util/fp.hpp) to name "
                   "whether exact bit-equality is the contract",
               diags);
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: float-type
// ---------------------------------------------------------------------------

void check_float_type(const SourceFile& file, std::vector<Diagnostic>& diags) {
  static const std::regex float_re(R"(\bfloat\b)");
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    std::smatch m;
    if (std::regex_search(file.code[i], m, float_re)) {
      report(file, i + 1, static_cast<std::size_t>(m.position()) + 1,
             "float-type",
             "`float` in simulation code: state and signatures are "
             "double-only (float truncation shifts event timestamps and "
             "breaks replay digests); use double",
             diags);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: include-hygiene
// ---------------------------------------------------------------------------

namespace {
const std::set<std::string> kModuleDirs = {
    "util",  "stats",   "capacity", "jobs", "obs",   "sim",  "sched",
    "offline", "theory", "mc",      "cloud", "serve", "conc", "lint",
    "cluster"};
}  // namespace

void check_include_hygiene(const SourceFile& file,
                           std::vector<Diagnostic>& diags) {
  static const std::regex quoted_re(R"(^\s*#\s*include\s*"([^"]+)\")");
  static const std::regex angled_re(R"(^\s*#\s*include\s*<([^>]+)>)");
  static const std::regex using_ns_re(R"(^\s*using\s+namespace\s+)");
  const bool header = is_header(file.rel);
  for (std::size_t i = 0; i < file.raw.size(); ++i) {
    const std::string& line = file.raw[i];
    std::smatch m;
    if (std::regex_search(line, m, quoted_re)) {
      const std::string inc = m[1];
      const std::size_t slash = inc.find('/');
      const std::string top =
          slash == std::string::npos ? std::string() : inc.substr(0, slash);
      if (inc.rfind("../", 0) == 0 || slash == std::string::npos ||
          kModuleDirs.count(top) == 0) {
        report(file, i + 1, 1, "include-hygiene",
               "quoted include \"" + inc +
                   "\" must be module-rooted (e.g. \"util/rng.hpp\"); "
                   "relative and bare includes break when files move and "
                   "defeat include-what-you-use auditing",
               diags);
      }
    } else if (header && std::regex_search(line, m, angled_re)) {
      if (std::string(m[1]) == "iostream") {
        report(file, i + 1, 1, "include-hygiene",
               "<iostream> in a header drags the static iostream "
               "constructors into every TU; include <ostream>/<istream> in "
               "the header and <iostream> only in .cpp files",
               diags);
      }
    }
    if (header && std::regex_search(file.code[i], using_ns_re)) {
      report(file, i + 1, 1, "include-hygiene",
             "file-scope `using namespace` in a header pollutes every "
             "includer; qualify names instead",
             diags);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: header-guard
// ---------------------------------------------------------------------------

void check_header_guard(const SourceFile& file,
                        std::vector<Diagnostic>& diags) {
  if (!is_header(file.rel)) return;
  static const std::regex pragma_once_re(R"(^\s*#\s*pragma\s+once\b)");
  for (const std::string& line : file.code) {
    if (std::regex_search(line, pragma_once_re)) return;
  }
  report(file, 1, 1, "header-guard",
         "header is missing `#pragma once` (double inclusion would be an "
         "ODR hazard)",
         diags);
}

// ---------------------------------------------------------------------------
// Rule: raw-concurrency
// ---------------------------------------------------------------------------

// The sharded admission plane's thread-safety argument is structural: every
// cross-thread interaction flows through conc::Channel / conc::ShardSet
// (src/conc/), so serve/, sched/, and cluster/ code can be audited as
// single-threaded. A raw primitive smuggled into any of these layers
// silently reopens the data-race surface the TSan CI job is meant to have
// closed — it must either move behind conc/ or carry an audited suppression.
void check_raw_concurrency(const SourceFile& file,
                           std::vector<Diagnostic>& diags) {
  if (!path_in(file.rel, "serve") && !path_in(file.rel, "sched") &&
      !path_in(file.rel, "cluster")) {
    return;
  }
  static const std::regex prim_re(
      R"(\bstd\s*::\s*(thread|jthread|mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|shared_mutex|shared_timed_mutex|condition_variable(?:_any)?|atomic(?:_flag|_ref)?|lock_guard|unique_lock|scoped_lock|shared_lock|counting_semaphore|binary_semaphore|latch|barrier|future|promise|async)\b)");
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    const std::string& code = file.code[i];
    for (auto it = std::sregex_iterator(code.begin(), code.end(), prim_re);
         it != std::sregex_iterator(); ++it) {
      report(file, i + 1, static_cast<std::size_t>(it->position()) + 1,
             "raw-concurrency",
             "std::" + (*it)[1].str() +
                 " in src/serve//src/sched//src/cluster/: cross-thread "
                 "traffic must flow "
                 "through conc::Channel / conc::ShardSet (src/conc/) or "
                 "util/thread_pool so the layer stays auditable "
                 "single-threaded",
             diags);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: timer-wheel-bypass
// ---------------------------------------------------------------------------

// Timer events must enter the engine through TimerWheel::arm (wrapped by
// Engine::set_timer): a kTimer event pushed straight into the static queue
// or the completion heap bypasses the wheel's generation-stamped slab, so
// cancel_timer could not tombstone it and the lazy dead-event compaction
// accounting would drift — both are digest-visible failures. The wheel's
// own implementation files are the one place allowed to queue timer nodes.
void check_timer_wheel_bypass(const SourceFile& file,
                              std::vector<Diagnostic>& diags) {
  if (!path_in(file.rel, "sim")) return;
  if (file.rel.rfind("src/sim/timer_wheel.", 0) == 0) return;
  static const std::regex push_re(
      R"(\b(push_event|push_back|emplace_back|push_heap|emplace|insert)\s*\()");
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    const std::string& code = file.code[i];
    if (code.find("kTimer") == std::string::npos) continue;
    std::smatch m;
    if (std::regex_search(code, m, push_re)) {
      report(file, i + 1, static_cast<std::size_t>(m.position()) + 1,
             "timer-wheel-bypass",
             "kTimer event pushed into an event queue directly; timers must "
             "be armed through Engine::set_timer so the wheel's "
             "generation-stamped slab (sim/timer_wheel.hpp) owns the "
             "cancel/tombstone lifecycle the replay digest depends on",
             diags);
    }
  }
}

void run_file_rules(const SourceFile& file, std::vector<Diagnostic>& diags) {
  check_unordered_iter(file, diags);
  check_ordered_set_hot_path(file, diags);
  check_banned_time(file, diags);
  check_float_eq(file, diags);
  check_float_type(file, diags);
  check_include_hygiene(file, diags);
  check_header_guard(file, diags);
  check_raw_concurrency(file, diags);
  check_timer_wheel_bypass(file, diags);
}

}  // namespace sjs::lint
