// Declaration/definition indexer: phase one of the cross-TU analyzer.
//
// The indexer walks the comment-stripped token stream of one file and
// extracts everything the graph rules (tools/lint/rules_graph.cpp) need, so
// phase two never re-reads source text:
//
//   - function definitions with qualified names and body line ranges
//   - call sites inside each body (name + `A::B` qualifier when written)
//   - allocation-capable operations per body (new/make_unique/push_back/...)
//   - direct banned clock/entropy reads per body
//   - `// sjs-hot-path-root` annotations (attach to the next declaration
//     or definition; roots are matched BY NAME, so annotating the virtual
//     `on_release` declaration in sim/scheduler.hpp marks every override)
//   - two-phase channel discipline facts (computed here, token-level)
//   - quoted includes and TraceKind declarations/mentions
//
// Everything in a FileIndex is derived from the file's bytes alone, which
// is what makes the on-disk cache (tools/lint/cache.hpp) sound: equal
// content hash implies equal index.
//
// This is a heuristic C++ indexer (no libclang, same constraint as the rest
// of the linter): it tracks brace/paren nesting and a namespace/class scope
// stack, classifies each `{` as namespace/class/function/other from the
// statement tokens before it, and attributes everything inside a function
// body (lambdas included) to that function. Known over-approximations are
// documented in docs/static-analysis.md; the graph rules are designed so
// over-approximation yields extra audited suppressions, never silence.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "lint/source.hpp"

namespace sjs::lint {

struct CallSite {
  std::string name;  // last identifier: `foo` for `x->foo(...)`
  std::string qual;  // written qualifier chain: `Engine::run` (may be empty)
  std::size_t line = 0;
  std::size_t col = 0;
};

struct OpSite {
  std::string what;  // operation or primitive name, e.g. "push_back"
  std::size_t line = 0;
  std::size_t col = 0;
};

// A channel-discipline violation detected inside one function.
struct ChannelViolation {
  std::size_t line = 0;
  std::size_t col = 0;
  std::string message;
};

struct FunctionDef {
  std::string name;       // last component, e.g. "step_event"
  std::string qualified;  // scope-joined, e.g. "sjs::sim::Engine::step_event"
  std::size_t line = 0;   // line of the name token (1-based)
  std::size_t body_begin = 0;  // line of the opening brace
  std::size_t body_end = 0;    // line of the closing brace
  bool is_root = false;        // carried a // sjs-hot-path-root annotation
  std::vector<CallSite> calls;
  std::vector<OpSite> allocs;   // allocation-capable operations
  std::vector<OpSite> banned;   // direct banned clock/entropy reads
  std::vector<ChannelViolation> channel_violations;
};

struct IncludeSite {
  std::string path;  // quoted include path as written
  std::size_t line = 0;
};

struct FileIndex {
  std::string rel;
  std::uint64_t hash = 0;
  std::vector<FunctionDef> funcs;
  std::vector<IncludeSite> includes;       // quoted includes only
  std::vector<std::string> root_names;     // names annotated in this file
  // trace-exhaustive raw material (only populated for the two obs files)
  std::vector<std::pair<std::string, std::size_t>> tracekind_decls;
  std::vector<std::string> tracekind_mentions;
};

// Builds the index for one lexed file.
FileIndex build_index(const SourceFile& file);

}  // namespace sjs::lint
