// Phase two, part one: the cross-TU call graph.
//
// Nodes are every FunctionDef from every indexed file; edges are resolved
// by name. Resolution is deliberately an over-approximation (no types, no
// overload sets): a call site `x.foo(...)` gains an edge to EVERY indexed
// function named `foo`; a written qualifier (`Engine::run(...)`) narrows
// the candidate set to functions whose qualified name ends with that
// chain. Unresolvable names (std::, libc, macros) produce no edges — their
// effects are captured instead by the per-body fact lists (allocs, banned)
// the indexer recorded.
//
// Over-approximation direction matters: for taint/reachability rules it
// can only create extra findings (answered with audited suppressions),
// never hide one — the failure mode a structural gate must not have.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "lint/index.hpp"

namespace sjs::lint {

struct CallGraph {
  struct Node {
    const FunctionDef* def = nullptr;
    std::size_t file = 0;  // index into the FileIndex vector
  };
  struct Edge {
    std::size_t caller = 0;
    std::size_t callee = 0;
    const CallSite* site = nullptr;  // the call site in the caller
  };

  std::vector<Node> nodes;
  std::vector<Edge> edges;
  std::vector<std::vector<std::size_t>> out;  // node -> edge ids (caller side)
  std::vector<std::vector<std::size_t>> in;   // node -> edge ids (callee side)
  std::map<std::string, std::vector<std::size_t>> by_name;

  // All node ids whose function name matches `name`.
  const std::vector<std::size_t>& named(const std::string& name) const;
};

// Builds nodes from every function in `indices` and resolves every call
// site. Node and edge order is deterministic (file order, then body order).
CallGraph build_call_graph(const std::vector<FileIndex>& indices);

// Breadth-first reachability over the call graph with parent tracking.
//
//   forward = true   follow caller -> callee edges (what can this reach?)
//   forward = false  follow callee -> caller edges (who can reach this?)
//
// `blocked_edge(edge_id)` vetoes traversal of individual edges (used for
// audited cold-path suppressions). Returns, for every node, the edge id by
// which it was first reached (or kUnreached).
struct Reachability {
  static constexpr std::size_t kUnreached = static_cast<std::size_t>(-1);
  std::vector<std::size_t> via_edge;  // node -> edge used to reach it
  std::vector<bool> reached;

  // Hops from `node` back to the nearest seed, seed first.
  std::vector<std::size_t> chain_to_seed(const CallGraph& g,
                                         std::size_t node,
                                         bool forward) const;
};

template <typename BlockedFn>
Reachability propagate(const CallGraph& g, const std::vector<std::size_t>& seeds,
                       bool forward, BlockedFn blocked_edge) {
  Reachability r;
  r.via_edge.assign(g.nodes.size(), Reachability::kUnreached);
  r.reached.assign(g.nodes.size(), false);
  std::vector<std::size_t> queue;
  for (const std::size_t s : seeds) {
    if (s < g.nodes.size() && !r.reached[s]) {
      r.reached[s] = true;
      queue.push_back(s);
    }
  }
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    const std::size_t n = queue[qi];
    const auto& adj = forward ? g.out[n] : g.in[n];
    for (const std::size_t e : adj) {
      const std::size_t next = forward ? g.edges[e].callee : g.edges[e].caller;
      if (r.reached[next] || blocked_edge(e)) continue;
      r.reached[next] = true;
      r.via_edge[next] = e;
      queue.push_back(next);
    }
  }
  return r;
}

}  // namespace sjs::lint
