#include "lint/analyzer.hpp"

#include <algorithm>
#include <tuple>

namespace fs = std::filesystem;

namespace sjs::lint {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

AnalyzerResult run_analyzer(const AnalyzerOptions& options) {
  AnalyzerResult result;

  std::vector<fs::path> inputs = options.inputs;
  if (inputs.empty()) inputs.push_back(options.root / "src");

  std::vector<fs::path> paths;
  for (const fs::path& input : inputs) {
    std::error_code ec;
    if (fs::is_directory(input, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(input)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          paths.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(input, ec)) {
      paths.push_back(input);
    } else {
      result.io_errors.push_back(input.generic_string());
    }
  }
  if (!result.io_errors.empty()) return result;
  std::sort(paths.begin(), paths.end());

  IndexCache cache;
  const bool use_cache = !options.cache_path.empty();
  if (use_cache) cache.load(options.cache_path);

  Analysis a;
  std::vector<Diagnostic>& diags = result.diags;
  for (const fs::path& p : paths) {
    auto file = load_file(p, options.root);
    if (!file) {
      result.io_errors.push_back(p.generic_string());
      return result;
    }
    // Suppressions (and their validity diagnostics) are always recomputed:
    // the graph rules probe them per reported line and per call-graph edge.
    collect_suppressions(*file, diags);

    const CacheEntry* hit =
        use_cache ? cache.lookup(file->rel, file->hash) : nullptr;
    if (hit != nullptr) {
      ++result.cache_hits;
      a.indices.push_back(hit->index);
      for (Diagnostic d : hit->diags) {
        d.file = file->path;  // cache stores rel; report the invoked path
        diags.push_back(std::move(d));
      }
    } else {
      CacheEntry entry;
      entry.hash = file->hash;
      entry.index = build_index(*file);
      run_file_rules(*file, entry.diags);
      a.indices.push_back(entry.index);
      for (const Diagnostic& d : entry.diags) diags.push_back(d);
      if (use_cache) {
        // Normalize the stored file field to rel for path-independent replay.
        for (Diagnostic& d : entry.diags) d.file = file->rel;
        cache.store(file->rel, std::move(entry));
      }
    }
    a.files.push_back(std::move(*file));
  }
  result.files_analyzed = a.files.size();

  a.graph = build_call_graph(a.indices);

  check_trace_exhaustive(a, diags);
  check_transitive_banned_time(a, diags);
  check_alloc_in_hot_path(a, diags, &result.alloc_report);
  check_channel_discipline(a, diags);
  check_include_cycle(a, diags);

  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& x, const Diagnostic& y) {
              return std::tie(x.file, x.line, x.col, x.rule) <
                     std::tie(y.file, y.line, y.col, y.rule);
            });
  std::sort(result.alloc_report.begin(), result.alloc_report.end(),
            [](const AllocReportEntry& x, const AllocReportEntry& y) {
              return std::tie(x.file, x.line, x.op) <
                     std::tie(y.file, y.line, y.op);
            });

  if (use_cache) cache.save(options.cache_path);
  return result;
}

}  // namespace sjs::lint
