#include "lint/index.hpp"

#include <cctype>
#include <regex>
#include <set>

namespace sjs::lint {

namespace {

struct Token {
  bool ident = false;  // identifier or number; false = single punct char
  std::string text;
  std::size_t line = 0;  // 1-based
  std::size_t col = 0;   // 1-based
};

std::vector<Token> tokenize(const std::vector<std::string>& code) {
  std::vector<Token> toks;
  for (std::size_t li = 0; li < code.size(); ++li) {
    const std::string& line = code[li];
    std::size_t i = 0;
    while (i < line.size()) {
      const unsigned char c = static_cast<unsigned char>(line[i]);
      if (std::isspace(c)) {
        ++i;
        continue;
      }
      if (std::isalpha(c) || line[i] == '_') {
        std::size_t j = i + 1;
        while (j < line.size() &&
               (std::isalnum(static_cast<unsigned char>(line[j])) ||
                line[j] == '_')) {
          ++j;
        }
        toks.push_back({true, line.substr(i, j - i), li + 1, i + 1});
        i = j;
        continue;
      }
      if (std::isdigit(c)) {
        std::size_t j = i + 1;
        while (j < line.size() &&
               (std::isalnum(static_cast<unsigned char>(line[j])) ||
                line[j] == '\'' || line[j] == '.')) {
          ++j;
        }
        toks.push_back({true, line.substr(i, j - i), li + 1, i + 1});
        i = j;
        continue;
      }
      toks.push_back({false, std::string(1, line[i]), li + 1, i + 1});
      ++i;
    }
  }
  return toks;
}

const std::set<std::string>& call_keyword_blocklist() {
  static const std::set<std::string> kKeywords = {
      "if",       "else",    "for",       "while",    "do",      "switch",
      "case",     "return",  "sizeof",    "alignof",  "noexcept", "catch",
      "throw",    "new",     "delete",    "decltype", "typeid",  "and",
      "or",       "not",     "defined",   "alignas",  "static_assert",
      "requires", "co_await", "co_yield", "co_return"};
  return kKeywords;
}

bool is_alloc_call_name(const std::string& name) {
  return name == "make_unique" || name == "make_shared" ||
         name == "push_back" || name == "emplace_back" || name == "resize";
}

// Matches the wildcard `*_clock` of the banned-time rule.
bool is_clock_type_name(const std::string& name) {
  return name.size() > 6 &&
         name.compare(name.size() - 6, 6, "_clock") == 0;
}

// Scope kinds for the block-classification stack.
enum class BlockKind { kNamespace, kClass, kFunction, kOther };

struct Block {
  BlockKind kind;
  std::string name;  // namespace/class name ("" when anonymous)
};

// Joins the written `A :: B :: name` chain ending at token `last`
// (inclusive). Returns e.g. "Engine::step_event".
std::string qualifier_chain(const std::vector<Token>& toks, std::size_t last) {
  std::string chain = toks[last].text;
  std::size_t k = last;
  while (k >= 3 && !toks[k - 1].ident && toks[k - 1].text == ":" &&
         !toks[k - 2].ident && toks[k - 2].text == ":" && toks[k - 3].ident) {
    chain = toks[k - 3].text + "::" + chain;
    k -= 3;
  }
  return chain;
}

// Result of classifying the statement tokens preceding a `{`.
struct Classification {
  BlockKind kind = BlockKind::kOther;
  std::string name;       // block name (namespace/class) or function name
  std::string qual;       // written qualifier chain for functions
  std::size_t name_line = 0;
};

Classification classify(const std::vector<Token>& stmt) {
  Classification out;
  if (stmt.empty()) return out;
  // namespace A::B {  /  inline namespace {  — name is the joined chain.
  for (std::size_t i = 0; i < stmt.size(); ++i) {
    if (stmt[i].ident && stmt[i].text == "namespace") {
      std::string name;
      for (std::size_t j = i + 1; j < stmt.size(); ++j) {
        if (stmt[j].ident) {
          name += stmt[j].text;
        } else if (stmt[j].text == ":") {
          name += ":";
        } else {
          break;
        }
      }
      out.kind = BlockKind::kNamespace;
      out.name = name;
      return out;
    }
  }
  // Function: first top-level `(` preceded by a non-keyword identifier (or
  // an `operator` token sequence), with no top-level `=` before it (which
  // would make this an initializer or lambda assignment).
  int paren = 0;
  bool saw_eq = false;
  for (std::size_t i = 0; i < stmt.size(); ++i) {
    const Token& t = stmt[i];
    if (!t.ident) {
      if (t.text == "(") {
        if (paren == 0 && i > 0 && !saw_eq) {
          const Token& prev = stmt[i - 1];
          if (prev.ident && call_keyword_blocklist().count(prev.text) == 0) {
            // `operator` one back means this is `operator()`; name it so.
            out.kind = BlockKind::kFunction;
            out.qual = qualifier_chain(stmt, i - 1);
            out.name = prev.text;
            out.name_line = prev.line;
            return out;
          }
          if (!prev.ident) {
            // operator overloads: `bool operator==(...) {`
            for (std::size_t k = i; k-- > 0;) {
              if (stmt[k].ident) {
                if (stmt[k].text == "operator") {
                  out.kind = BlockKind::kFunction;
                  out.name = "operator";
                  out.qual = "operator";
                  out.name_line = stmt[k].line;
                  return out;
                }
                break;
              }
            }
          }
        }
        ++paren;
      } else if (t.text == ")") {
        if (paren > 0) --paren;
      } else if (t.text == "=" && paren == 0) {
        saw_eq = true;
      }
    }
  }
  // class / struct / union (enum → other).
  for (std::size_t i = 0; i < stmt.size(); ++i) {
    if (!stmt[i].ident) continue;
    if (stmt[i].text == "enum") return out;  // enum / enum class → other
    if (stmt[i].text == "class" || stmt[i].text == "struct" ||
        stmt[i].text == "union") {
      out.kind = BlockKind::kClass;
      for (std::size_t j = i + 1; j < stmt.size(); ++j) {
        if (stmt[j].ident) {
          out.name = stmt[j].text;
          break;
        }
        if (stmt[j].text != "[" && stmt[j].text != "]") break;
      }
      return out;
    }
  }
  return out;
}

// Token-level two-phase discipline analysis for one function body (see
// docs/static-analysis.md, channel-discipline). `toks[body_begin,body_end)`
// is the token range between the body braces (exclusive of both).
std::vector<ChannelViolation> analyze_channel_discipline(
    const std::vector<Token>& toks, std::size_t body_begin,
    std::size_t body_end) {
  std::vector<ChannelViolation> out;
  bool mentions_reservation = false;
  for (std::size_t i = body_begin; i < body_end; ++i) {
    if (toks[i].ident && toks[i].text == "Reservation") {
      mentions_reservation = true;
      break;
    }
  }
  if (!mentions_reservation) return out;

  const auto is_call = [&](std::size_t i, const char* name) {
    return toks[i].ident && toks[i].text == name && i + 1 < body_end &&
           !toks[i + 1].ident && toks[i + 1].text == "(";
  };
  std::vector<std::size_t> reserves;
  std::vector<std::size_t> resolves;  // commit or abort call sites
  for (std::size_t i = body_begin; i < body_end; ++i) {
    if (is_call(i, "reserve")) reserves.push_back(i);
    if (is_call(i, "commit") || is_call(i, "abort")) resolves.push_back(i);
  }

  // Matching close for the paren/brace opened at `open`.
  const auto matching = [&](std::size_t open, const char* o, const char* c) {
    int depth = 0;
    for (std::size_t i = open; i < body_end; ++i) {
      if (toks[i].ident) continue;
      if (toks[i].text == o) ++depth;
      if (toks[i].text == c && --depth == 0) return i;
    }
    return body_end;
  };

  for (const std::size_t r : reserves) {
    // First resolution after this reserve.
    std::size_t resolve = body_end;
    for (const std::size_t c : resolves) {
      if (c > r) {
        resolve = c;
        break;
      }
    }
    if (resolve == body_end) {
      out.push_back({toks[r].line, toks[r].col,
                     "conc::Channel::reserve with no commit/abort in the "
                     "enclosing function: an unresolved reservation wedges "
                     "the consumer at its ring position (two-phase send "
                     "contract, conc/channel.hpp)"});
      continue;
    }
    // The status-check block: if the reserve sits inside `if (...)` /
    // `while (...)` parens, the controlled block (or statement) is the
    // failure path and may return/throw freely.
    std::size_t exempt_begin = 0, exempt_end = 0;
    {
      int depth = 0;
      for (std::size_t i = r; i-- > body_begin;) {
        if (toks[i].ident) continue;
        if (toks[i].text == ")") ++depth;
        if (toks[i].text == "(") {
          if (depth == 0) {
            if (i > body_begin && toks[i - 1].ident &&
                (toks[i - 1].text == "if" || toks[i - 1].text == "while")) {
              const std::size_t close = matching(i, "(", ")");
              if (close + 1 < body_end && !toks[close + 1].ident &&
                  toks[close + 1].text == "{") {
                exempt_begin = close + 1;
                exempt_end = matching(close + 1, "{", "}");
              } else {
                exempt_begin = close + 1;
                exempt_end = exempt_begin;
                while (exempt_end < body_end &&
                       (toks[exempt_end].ident ||
                        toks[exempt_end].text != ";")) {
                  ++exempt_end;
                }
              }
            }
            break;
          }
          --depth;
        }
      }
    }
    for (std::size_t t = r; t < resolve; ++t) {
      if (!toks[t].ident) continue;
      if (toks[t].text != "return" && toks[t].text != "throw") continue;
      if (t >= exempt_begin && t <= exempt_end) continue;
      out.push_back({toks[t].line, toks[t].col,
                     "token-level path between conc::Channel::reserve and "
                     "its commit/abort leaves the function: the claimed ring "
                     "slot would never resolve and the consumer would wedge "
                     "at its position (two-phase send contract, "
                     "conc/channel.hpp)"});
    }
  }
  return out;
}

}  // namespace

FileIndex build_index(const SourceFile& file) {
  FileIndex idx;
  idx.rel = file.rel;
  idx.hash = file.hash;

  // Quoted includes (for the include graph; hygiene stays a line rule).
  static const std::regex quoted_re(R"(^\s*#\s*include\s*"([^"]+)\")");
  for (std::size_t i = 0; i < file.raw.size(); ++i) {
    std::smatch m;
    if (std::regex_search(file.raw[i], m, quoted_re)) {
      idx.includes.push_back({m[1], i + 1});
    }
  }

  // Hot-path root annotations: the marker attaches to the first function
  // declaration or definition on the marker line or the three lines below,
  // and marks that NAME (so annotating the base-class declaration of a
  // virtual hook marks every override).
  static const std::regex name_re(R"(([A-Za-z_][A-Za-z0-9_]*)\s*\()");
  for (std::size_t i = 0; i < file.raw.size(); ++i) {
    if (file.raw[i].find("sjs-hot-path-root") == std::string::npos) continue;
    for (std::size_t j = i; j < file.raw.size() && j < i + 4; ++j) {
      std::smatch m;
      if (std::regex_search(file.code[j], m, name_re)) {
        idx.root_names.push_back(m[1]);
        break;
      }
    }
  }

  // TraceKind raw material for the (cross-file) trace-exhaustive rule.
  if (file.rel == "src/obs/trace_event.hpp") {
    bool in_enum = false;
    static const std::regex enum_open(R"(enum\s+class\s+TraceKind\b)");
    static const std::regex member_re(R"(^\s*(k[A-Za-z0-9_]+)\s*(?:=[^,]*)?,?)");
    for (std::size_t i = 0; i < file.code.size(); ++i) {
      const std::string& code = file.code[i];
      if (!in_enum) {
        if (std::regex_search(code, enum_open)) in_enum = true;
        continue;
      }
      if (code.find('}') != std::string::npos) break;
      std::smatch m;
      if (std::regex_search(code, m, member_re)) {
        idx.tracekind_decls.emplace_back(m[1], i + 1);
      }
    }
  }
  if (file.rel == "src/obs/exporters.cpp") {
    static const std::regex mention_re(R"(TraceKind\s*::\s*(k[A-Za-z0-9_]+))");
    for (const std::string& code : file.code) {
      for (auto it = std::sregex_iterator(code.begin(), code.end(), mention_re);
           it != std::sregex_iterator(); ++it) {
        idx.tracekind_mentions.push_back((*it)[1]);
      }
    }
  }

  // --- function definitions ----------------------------------------------
  const std::vector<Token> toks = tokenize(file.code);
  std::vector<Block> stack;
  std::vector<Token> stmt;
  bool in_function = false;
  std::size_t func_open_depth = 0;  // stack depth at which the body opened
  std::size_t body_token_begin = 0;
  FunctionDef current;

  const auto scope_prefix = [&stack]() {
    std::string prefix;
    for (const Block& b : stack) {
      if ((b.kind == BlockKind::kNamespace || b.kind == BlockKind::kClass) &&
          !b.name.empty()) {
        prefix += b.name + "::";
      }
    }
    return prefix;
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (in_function) {
      if (!t.ident && t.text == "{") {
        stack.push_back({BlockKind::kOther, ""});
        continue;
      }
      if (!t.ident && t.text == "}") {
        if (stack.size() == func_open_depth) {
          // Function body closed.
          current.body_end = t.line;
          auto viols =
              analyze_channel_discipline(toks, body_token_begin, i);
          current.channel_violations = std::move(viols);
          idx.funcs.push_back(std::move(current));
          current = FunctionDef{};
          in_function = false;
          if (!stack.empty()) stack.pop_back();
        } else if (!stack.empty()) {
          stack.pop_back();
        }
        continue;
      }
      if (!t.ident) continue;
      // Body facts: calls, allocation ops, banned reads.
      const bool next_is_paren =
          i + 1 < toks.size() && !toks[i + 1].ident && toks[i + 1].text == "(";
      const bool next_is_langle =
          i + 1 < toks.size() && !toks[i + 1].ident && toks[i + 1].text == "<";
      const bool prev_is_operator =
          i > 0 && toks[i - 1].ident && toks[i - 1].text == "operator";
      if (t.text == "new" && !prev_is_operator) {
        current.allocs.push_back({"new", t.line, t.col});
        continue;
      }
      if (t.text == "random_device") {
        current.banned.push_back({"std::random_device", t.line, t.col});
        continue;
      }
      if (is_clock_type_name(t.text) && i + 3 < toks.size() &&
          toks[i + 1].text == ":" && toks[i + 2].text == ":" &&
          toks[i + 3].ident && toks[i + 3].text == "now") {
        current.banned.push_back(
            {"std::chrono::*_clock::now", t.line, t.col});
        continue;
      }
      if (next_is_paren && call_keyword_blocklist().count(t.text) == 0) {
        if (is_alloc_call_name(t.text)) {
          current.allocs.push_back({t.text, t.line, t.col});
        }
        if (t.text == "rand" || t.text == "srand") {
          current.banned.push_back({"std::" + t.text + "()", t.line, t.col});
        } else if (t.text == "gettimeofday" || t.text == "clock_gettime" ||
                   t.text == "timespec_get") {
          current.banned.push_back({t.text + "()", t.line, t.col});
        } else if (t.text == "clock" && i + 2 < toks.size() &&
                   !toks[i + 2].ident && toks[i + 2].text == ")") {
          current.banned.push_back({"clock()", t.line, t.col});
        } else if (t.text == "time" && i + 3 < toks.size() &&
                   toks[i + 2].ident &&
                   (toks[i + 2].text == "NULL" || toks[i + 2].text == "nullptr" ||
                    toks[i + 2].text == "0") &&
                   !toks[i + 3].ident && toks[i + 3].text == ")") {
          current.banned.push_back({"time(nullptr)", t.line, t.col});
        }
        CallSite call;
        call.name = t.text;
        const std::string chain = qualifier_chain(toks, i);
        if (chain != t.text) call.qual = chain;
        call.line = t.line;
        call.col = t.col;
        current.calls.push_back(std::move(call));
        continue;
      }
      if ((next_is_paren || next_is_langle) && is_alloc_call_name(t.text)) {
        current.allocs.push_back({t.text, t.line, t.col});
        // make_unique<T>(...) is also a call edge target by name.
        current.calls.push_back({t.text, "", t.line, t.col});
        continue;
      }
      if (t.text == "function" && next_is_langle && i >= 2 &&
          toks[i - 1].text == ":" && toks[i - 2].text == ":" &&
          i >= 3 && toks[i - 3].ident && toks[i - 3].text == "std") {
        current.allocs.push_back({"std::function", t.line, t.col});
        continue;
      }
      continue;
    }
    // Outside any function: build statements, classify blocks.
    if (!t.ident && t.text == "{") {
      Classification c = classify(stmt);
      stmt.clear();
      if (c.kind == BlockKind::kFunction) {
        current = FunctionDef{};
        current.name = c.name;
        current.qualified = scope_prefix() + c.qual;
        current.line = c.name_line;
        current.body_begin = t.line;
        stack.push_back({BlockKind::kFunction, c.name});
        in_function = true;
        func_open_depth = stack.size();
        body_token_begin = i + 1;
      } else {
        stack.push_back({c.kind, c.name});
      }
      continue;
    }
    if (!t.ident && t.text == "}") {
      if (!stack.empty()) stack.pop_back();
      stmt.clear();
      continue;
    }
    if (!t.ident && t.text == ";") {
      stmt.clear();
      continue;
    }
    stmt.push_back(t);
  }
  return idx;
}

}  // namespace sjs::lint
