// Rule plugins for the sjs_lint analyzer.
//
// Two phases:
//
//   Phase 1 (per-file): each rule sees one SourceFile and appends
//   diagnostics. These are the 9 line/token rules carried over from the
//   original single-pass linter, byte-for-byte compatible (the golden diff
//   test in tests/lint_test.cpp holds them to that). Phase-1 output is
//   cacheable: it depends only on the file's bytes.
//
//   Phase 2 (cross-TU): rules that see every FileIndex plus the call graph
//   — trace-exhaustive (enum vs exporter), transitive-banned-time,
//   alloc-in-hot-path, channel-discipline, include-cycle.
#pragma once

#include <string>
#include <vector>

#include "lint/call_graph.hpp"
#include "lint/index.hpp"
#include "lint/source.hpp"

namespace sjs::lint {

// --- phase 1: per-file rules (legacy, diagnostics frozen) -------------------

void check_unordered_iter(const SourceFile& file,
                          std::vector<Diagnostic>& diags);
void check_ordered_set_hot_path(const SourceFile& file,
                                std::vector<Diagnostic>& diags);
void check_banned_time(const SourceFile& file, std::vector<Diagnostic>& diags);
void check_float_eq(const SourceFile& file, std::vector<Diagnostic>& diags);
void check_float_type(const SourceFile& file, std::vector<Diagnostic>& diags);
void check_include_hygiene(const SourceFile& file,
                           std::vector<Diagnostic>& diags);
void check_header_guard(const SourceFile& file,
                        std::vector<Diagnostic>& diags);
void check_raw_concurrency(const SourceFile& file,
                           std::vector<Diagnostic>& diags);
void check_timer_wheel_bypass(const SourceFile& file,
                              std::vector<Diagnostic>& diags);

// Runs every phase-1 rule over one file.
void run_file_rules(const SourceFile& file, std::vector<Diagnostic>& diags);

// --- phase 2: cross-TU rules ------------------------------------------------

struct Analysis {
  std::vector<SourceFile> files;   // sorted by path
  std::vector<FileIndex> indices;  // parallel to files
  CallGraph graph;
};

// One line of the --report=alloc work-list (all allocation sites reachable
// from hot-path roots, including audited/suppressed ones).
struct AllocReportEntry {
  std::string file;
  std::size_t line = 0;
  std::string op;
  std::string function;
  bool suppressed = false;
  std::string chain;  // "root -> ... -> function"
};

void check_trace_exhaustive(const Analysis& a, std::vector<Diagnostic>& diags);
void check_transitive_banned_time(const Analysis& a,
                                  std::vector<Diagnostic>& diags);
void check_alloc_in_hot_path(const Analysis& a, std::vector<Diagnostic>& diags,
                             std::vector<AllocReportEntry>* report);
void check_channel_discipline(const Analysis& a,
                              std::vector<Diagnostic>& diags);
void check_include_cycle(const Analysis& a, std::vector<Diagnostic>& diags);

}  // namespace sjs::lint
