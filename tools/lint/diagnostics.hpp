// Diagnostic type and the rule registry for sjs_lint.
//
// Rule ids are stable: they appear in suppression comments in the source
// tree, so renaming one silently disables every existing suppression.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace sjs::lint {

struct Diagnostic {
  std::string file;  // path as given on the command line (relative to root)
  std::size_t line = 0;
  std::size_t col = 1;
  std::string rule;
  std::string message;
  // Call-chain notes for the graph rules (one entry per hop). Printed as
  // `note:` follow-up lines under --explain=<rule>.
  std::vector<std::string> chain;
};

// id -> one-line description, in the order --list-rules prints them.
const std::vector<std::pair<const char*, const char*>>& rule_table();

bool is_known_rule(const std::string& id);

}  // namespace sjs::lint
