#include "lint/source.hpp"

#include <fstream>
#include <regex>

namespace fs = std::filesystem;

namespace sjs::lint {

namespace {

// The suppression-comment marker. Assembled from pieces so the analyzer's
// own sources (which are linted) do not themselves contain a parsable
// marker inside string literals.
const std::string kMarker = std::string("sjs-lint") + ":";

// Lexer state carried across physical lines.
enum class LexState {
  kCode,
  kBlockComment,   // inside /* ... */
  kLineComment,    // a // comment continued by a trailing line splice
  kString,         // inside "..." continued by a trailing line splice
  kChar,           // inside '...' continued by a trailing line splice
  kRawString,      // inside R"delim( ... )delim"
};

bool ends_with_odd_backslashes(const std::string& line) {
  std::size_t n = 0;
  for (auto it = line.rbegin(); it != line.rend() && *it == '\\'; ++it) ++n;
  return (n % 2) == 1;
}

}  // namespace

std::vector<std::string> strip_comments(const std::vector<std::string>& raw) {
  std::vector<std::string> out;
  out.reserve(raw.size());
  LexState state = LexState::kCode;
  std::string raw_delim;  // the `delim` of the active raw string
  for (const std::string& line : raw) {
    std::string code(line.size(), ' ');
    std::size_t i = 0;
    // Resume a multi-line construct.
    if (state == LexState::kLineComment) {
      // A // comment spliced onto this line swallows it whole (and keeps
      // swallowing while the splices continue).
      if (!ends_with_odd_backslashes(line)) state = LexState::kCode;
      out.push_back(std::move(code));
      continue;
    }
    while (i < line.size()) {
      if (state == LexState::kBlockComment) {
        if (line.compare(i, 2, "*/") == 0) {
          state = LexState::kCode;
          i += 2;
        } else {
          ++i;
        }
        continue;
      }
      if (state == LexState::kRawString) {
        const std::string close = ")" + raw_delim + "\"";
        if (line.compare(i, close.size(), close) == 0) {
          i += close.size();
          code[i - 1] = '"';  // keep the closing quote, like plain strings
          state = LexState::kCode;
        } else {
          ++i;
        }
        continue;
      }
      if (state == LexState::kString || state == LexState::kChar) {
        const char quote = state == LexState::kString ? '"' : '\'';
        if (line[i] == '\\') {
          i += 2;
          continue;
        }
        if (line[i] == quote) {
          code[i] = quote;
          state = LexState::kCode;
        }
        ++i;
        continue;
      }
      // state == kCode
      if (line.compare(i, 2, "//") == 0) {
        // Rest of the physical line is comment; a trailing splice continues
        // it onto the next physical line ([lex.phases]: splicing happens
        // before comments are recognized).
        if (ends_with_odd_backslashes(line)) state = LexState::kLineComment;
        i = line.size();
        break;
      }
      if (line.compare(i, 2, "/*") == 0) {
        state = LexState::kBlockComment;
        i += 2;
        continue;
      }
      // Raw string literal: R"delim( ... )delim". Only recognized when the
      // R is not the tail of a longer identifier (operatoR" is not a thing,
      // but LR"/uR"/UR"/u8R" prefixes are).
      if (line[i] == 'R' && i + 1 < line.size() && line[i + 1] == '"') {
        const bool prefixed =
            i > 0 && (std::isalnum(static_cast<unsigned char>(line[i - 1])) ||
                      line[i - 1] == '_');
        // Allow encoding prefixes (L, u, U, u8) but not arbitrary idents.
        const bool encoding_prefix =
            prefixed && i >= 1 &&
            (line[i - 1] == 'L' || line[i - 1] == 'u' || line[i - 1] == 'U' ||
             (i >= 2 && line[i - 1] == '8' && line[i - 2] == 'u'));
        if (!prefixed || encoding_prefix) {
          std::size_t d = i + 2;  // after R"
          std::string delim;
          while (d < line.size() && line[d] != '(' && delim.size() < 16) {
            delim.push_back(line[d]);
            ++d;
          }
          if (d < line.size() && line[d] == '(') {
            code[i] = 'R';
            code[i + 1] = '"';
            raw_delim = delim;
            state = LexState::kRawString;
            i = d + 1;
            continue;
          }
        }
      }
      if (line[i] == '"' || line[i] == '\'') {
        const char quote = line[i];
        code[i] = quote;
        state = quote == '"' ? LexState::kString : LexState::kChar;
        ++i;
        continue;
      }
      code[i] = line[i];
      ++i;
    }
    // End of physical line: plain strings/chars only continue via splice;
    // without one the (ill-formed) literal is closed so one bad line cannot
    // poison the rest of the file.
    if ((state == LexState::kString || state == LexState::kChar) &&
        !ends_with_odd_backslashes(line)) {
      state = LexState::kCode;
    }
    out.push_back(std::move(code));
  }
  return out;
}

std::uint64_t content_hash(const std::vector<std::string>& raw) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  const auto mix = [&h](unsigned char c) {
    h ^= c;
    h *= 1099511628211ULL;  // FNV prime
  };
  for (const std::string& line : raw) {
    for (const char c : line) mix(static_cast<unsigned char>(c));
    mix('\n');
  }
  return h;
}

void collect_suppressions(SourceFile& file, std::vector<Diagnostic>& diags) {
  static const std::regex allow_re(
      std::string("sjs-lint") + R"(:\s*allow\(([A-Za-z0-9_-]*)\)\s*(:?)\s*(.*))");
  for (std::size_t i = 0; i < file.raw.size(); ++i) {
    const std::string& line = file.raw[i];
    if (line.find(kMarker) == std::string::npos) continue;
    std::smatch m;
    if (!std::regex_search(line, m, allow_re)) {
      diags.push_back({file.path, i + 1, line.find(kMarker) + 1,
                       "bad-suppression",
                       "unparsable sjs-lint comment; expected "
                       "`// " + kMarker + " allow(<rule>): <reason>`",
                       {}});
      continue;
    }
    const std::string rule = m[1];
    const bool has_colon = m[2].length() > 0;
    const std::string reason = m[3];
    if (!is_known_rule(rule)) {
      diags.push_back({file.path, i + 1, 1, "bad-suppression",
                       "allow() names unknown rule '" + rule + "'",
                       {}});
      continue;
    }
    const bool has_reason =
        has_colon && reason.find_first_not_of(" \t") != std::string::npos;
    if (!has_reason) {
      diags.push_back({file.path, i + 1, 1, "bad-suppression",
                       "allow(" + rule + ") needs a reason: `// " + kMarker +
                           " allow(" + rule + "): <why this is safe>`",
                       {}});
      continue;
    }
    file.allows[i + 1].push_back({rule, true});
  }
}

bool is_suppressed(const SourceFile& file, std::size_t line,
                   const std::string& rule) {
  for (std::size_t l : {line, line > 1 ? line - 1 : line}) {
    const auto it = file.allows.find(l);
    if (it == file.allows.end()) continue;
    for (const Suppression& s : it->second) {
      if (s.rule == rule) return true;
    }
  }
  return false;
}

void report(const SourceFile& file, std::size_t line, std::size_t col,
            const std::string& rule, const std::string& message,
            std::vector<Diagnostic>& diags) {
  if (is_suppressed(file, line, rule)) return;
  diags.push_back({file.path, line, col, rule, message, {}});
}

std::optional<SourceFile> load_file(const fs::path& path,
                                    const fs::path& root) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  SourceFile file;
  file.path = path.generic_string();
  std::error_code ec;
  const fs::path rel = fs::relative(path, root, ec);
  file.rel = ec ? path.generic_string() : rel.generic_string();
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    file.raw.push_back(line);
  }
  file.hash = content_hash(file.raw);
  file.code = strip_comments(file.raw);
  return file;
}

bool path_in(const std::string& rel, const char* dir) {
  return rel.rfind(std::string("src/") + dir + "/", 0) == 0;
}

bool is_header(const std::string& rel) {
  return rel.size() > 4 && rel.compare(rel.size() - 4, 4, ".hpp") == 0;
}

bool is_hot_path_dir(const std::string& rel) {
  return path_in(rel, "sched") || path_in(rel, "sim") || path_in(rel, "mc") ||
         path_in(rel, "cloud");
}

bool is_rng_or_logging(const std::string& rel) {
  return rel.rfind("src/util/rng", 0) == 0 ||
         rel.rfind("src/util/logging", 0) == 0;
}

std::string module_of(const std::string& rel) {
  if (rel.rfind("src/", 0) == 0) {
    const std::size_t slash = rel.find('/', 4);
    if (slash != std::string::npos) return rel.substr(4, slash - 4);
    return "";
  }
  if (rel.rfind("tools/lint/", 0) == 0) return "lint";
  if (rel.rfind("tools/", 0) == 0) return "tools";
  if (rel.rfind("bench/", 0) == 0) return "bench";
  return "";
}

std::string include_module(const std::string& include_path) {
  const std::size_t slash = include_path.find('/');
  if (slash == std::string::npos) return "";
  return include_path.substr(0, slash);
}

}  // namespace sjs::lint
