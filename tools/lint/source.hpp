// Source model for the sjs_lint analyzer library.
//
// A SourceFile is the unit every rule consumes: raw lines for suppression
// and include scanning, comment/string-blanked "code" lines for token rules
// (columns are preserved so diagnostics point at real coordinates), the
// parsed suppression table, and a content hash that keys the on-disk symbol
// index cache (tools/lint/cache.hpp).
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "lint/diagnostics.hpp"

namespace sjs::lint {

struct Suppression {
  std::string rule;
  bool has_reason = false;
};

struct SourceFile {
  std::string path;  // path as given on the command line (for reporting)
  std::string rel;   // normalized path relative to the lint root
  std::uint64_t hash = 0;          // FNV-1a over the raw bytes
  std::vector<std::string> raw;    // raw lines, 0-based
  std::vector<std::string> code;   // comments and string contents blanked
  // line (1-based) -> suppressions written on that line
  std::map<std::size_t, std::vector<Suppression>> allows;
};

// Blanks comments and string/char literal contents while preserving column
// positions, so rules never fire inside comments or literals and matches
// report real coordinates. Handles:
//   - `//` and `/* */` (multi-line) comments
//   - string/char literals with escape sequences
//   - raw string literals `R"delim( ... )delim"`, including multi-line
//     bodies and bodies containing `//`, `"`, or banned tokens
//   - line splices: a backslash-newline continues a `//` comment (and a
//     string literal) onto the next physical line
std::vector<std::string> strip_comments(const std::vector<std::string>& raw);

// FNV-1a 64-bit over the file's raw line contents (newline-normalized, so
// the hash is stable across CRLF checkouts). Cache key material only.
std::uint64_t content_hash(const std::vector<std::string>& raw);

// Parses every suppression comment in the file into file.allows. Malformed
// forms are reported immediately as `bad-suppression`.
void collect_suppressions(SourceFile& file, std::vector<Diagnostic>& diags);

// A diagnostic on line L is suppressed by a valid allow(rule) on line L or
// L-1 (the conventional "comment above" position).
bool is_suppressed(const SourceFile& file, std::size_t line,
                   const std::string& rule);

// Appends the diagnostic unless suppressed.
void report(const SourceFile& file, std::size_t line, std::size_t col,
            const std::string& rule, const std::string& message,
            std::vector<Diagnostic>& diags);

// Loads and lexes a file. Returns nullopt when unreadable.
std::optional<SourceFile> load_file(const std::filesystem::path& path,
                                    const std::filesystem::path& root);

// --- path classification helpers shared by the rules ------------------------

bool path_in(const std::string& rel, const char* dir);
bool is_header(const std::string& rel);
bool is_hot_path_dir(const std::string& rel);
bool is_rng_or_logging(const std::string& rel);

// Top-level module of a file ("sched" for src/sched/edf.cpp, "lint" for
// tools/lint/lexer.cpp, "tools"/"bench" otherwise). Empty for files outside
// any recognized root.
std::string module_of(const std::string& rel);

// Module a quoted include path belongs to ("sim" for "sim/engine.hpp").
std::string include_module(const std::string& include_path);

}  // namespace sjs::lint
