// Orchestration: file loading, the phase-1/phase-2 split, caching, and
// output ordering. The CLI (tools/sjs_lint.cpp) is a thin argv shim over
// this; tests link it directly.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "lint/cache.hpp"
#include "lint/rules.hpp"

namespace sjs::lint {

struct AnalyzerOptions {
  std::filesystem::path root = ".";
  std::vector<std::filesystem::path> inputs;  // files or directories
  std::filesystem::path cache_path;           // empty: no cache
};

struct AnalyzerResult {
  // Sorted by (file, line, col, rule) — the stable output order.
  std::vector<Diagnostic> diags;
  // Full alloc-in-hot-path work-list, suppressed entries included
  // (--report=alloc; the artifact the zero-alloc refactor PRs burn down).
  std::vector<AllocReportEntry> alloc_report;
  std::size_t files_analyzed = 0;
  std::size_t cache_hits = 0;
  // Set when an input path could not be read (the CLI exits 2).
  std::vector<std::string> io_errors;
};

// Runs both phases over every lintable file under the inputs (default:
// <root>/src).
AnalyzerResult run_analyzer(const AnalyzerOptions& options);

// True for the extensions the linter consumes (.cpp/.hpp/.h/.cc).
bool lintable(const std::filesystem::path& p);

}  // namespace sjs::lint
