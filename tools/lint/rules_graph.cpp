// Phase-2 (cross-TU) rules: everything that needs more than one file —
// the enum/exporter pairing, call-graph reachability (time taint, hot-path
// allocations), the per-function channel-discipline facts, and the
// module-level include graph.
#include <algorithm>
#include <set>
#include <sstream>

#include "lint/rules.hpp"

namespace sjs::lint {

namespace {

// Renders "a -> b -> c" from graph node ids (in the given order).
std::string render_chain(const CallGraph& g,
                         const std::vector<std::size_t>& nodes) {
  std::string out;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) out += " -> ";
    out += g.nodes[nodes[i]].def->qualified;
  }
  return out;
}

// Per-hop note lines ("note: called from file:line") for --explain.
std::vector<std::string> chain_notes(const Analysis& a,
                                     const std::vector<std::size_t>& nodes) {
  std::vector<std::string> notes;
  const CallGraph& g = a.graph;
  for (const std::size_t n : nodes) {
    const CallGraph::Node& node = g.nodes[n];
    notes.push_back(node.def->qualified + " (" + a.indices[node.file].rel +
                    ":" + std::to_string(node.def->line) + ")");
  }
  return notes;
}

// True when an allow(rule) on the call-site line (or the line above it)
// vetoes traversal of this edge — an audited cold-path / sanctioned-seam cut.
bool edge_suppressed(const Analysis& a, const CallGraph::Edge& e,
                     const std::string& rule) {
  const SourceFile& caller_file = a.files[a.graph.nodes[e.caller].file];
  return is_suppressed(caller_file, e.site->line, rule);
}

}  // namespace

// ---------------------------------------------------------------------------
// Rule: trace-exhaustive (legacy, diagnostics frozen)
// ---------------------------------------------------------------------------

void check_trace_exhaustive(const Analysis& a, std::vector<Diagnostic>& diags) {
  const SourceFile* enum_file = nullptr;
  const FileIndex* enum_idx = nullptr;
  const SourceFile* exporter = nullptr;
  const FileIndex* exporter_idx = nullptr;
  for (std::size_t i = 0; i < a.files.size(); ++i) {
    if (a.files[i].rel == "src/obs/trace_event.hpp") {
      enum_file = &a.files[i];
      enum_idx = &a.indices[i];
    }
    if (a.files[i].rel == "src/obs/exporters.cpp") {
      exporter = &a.files[i];
      exporter_idx = &a.indices[i];
    }
  }
  if (enum_file == nullptr || exporter == nullptr) return;

  const std::set<std::string> handled(exporter_idx->tracekind_mentions.begin(),
                                      exporter_idx->tracekind_mentions.end());
  for (const auto& [kind, decl_line] : enum_idx->tracekind_decls) {
    if (handled.count(kind)) continue;
    report(*exporter, 1, 1, "trace-exhaustive",
           "TraceKind::" + kind + " (declared at " + enum_file->path + ":" +
               std::to_string(decl_line) +
               ") is not handled by the Chrome exporter; every event kind "
               "must be routed (or explicitly ignored) in the switch",
           diags);
  }
}

// ---------------------------------------------------------------------------
// Rule: transitive-banned-time
// ---------------------------------------------------------------------------

// A function is time-tainted when its call closure reaches a direct banned
// clock/entropy read. Sanctioned sinks — the seeded Rng (util/rng) and the
// serve::Clock bridge (serve/clock.*), the two places wall-clock access is
// part of the contract — do not seed taint, and neither does a direct read
// the per-file rule already carries an audited allow(banned-time) for.
// Propagation runs callee -> caller; an allow(transitive-banned-time) on a
// call line both suppresses the diagnostic there and stops the taint from
// climbing past that edge.
void check_transitive_banned_time(const Analysis& a,
                                  std::vector<Diagnostic>& diags) {
  const CallGraph& g = a.graph;

  const auto sanctioned = [](const std::string& rel) {
    return is_rng_or_logging(rel) || rel.rfind("src/serve/clock.", 0) == 0;
  };

  std::vector<std::size_t> seeds;
  std::vector<const OpSite*> seed_read(g.nodes.size(), nullptr);
  for (std::size_t n = 0; n < g.nodes.size(); ++n) {
    const SourceFile& file = a.files[g.nodes[n].file];
    if (sanctioned(file.rel)) continue;
    for (const OpSite& op : g.nodes[n].def->banned) {
      if (is_suppressed(file, op.line, "banned-time")) continue;
      seeds.push_back(n);
      seed_read[n] = &op;
      break;
    }
  }
  if (seeds.empty()) return;

  const Reachability r =
      propagate(g, seeds, /*forward=*/false, [&](std::size_t e) {
        return edge_suppressed(a, g.edges[e], "transitive-banned-time");
      });

  for (std::size_t n = 0; n < g.nodes.size(); ++n) {
    if (!r.reached[n] || r.via_edge[n] == Reachability::kUnreached) continue;
    const CallGraph::Edge& e = g.edges[r.via_edge[n]];
    const SourceFile& file = a.files[g.nodes[n].file];
    // Chain from this caller down to the function with the direct read.
    const std::vector<std::size_t> chain = g.nodes.empty()
                                               ? std::vector<std::size_t>{}
                                               : r.chain_to_seed(g, n, false);
    const std::size_t seed = chain.back();
    const OpSite* read = seed_read[seed];
    std::string msg =
        "call to '" + g.nodes[e.callee].def->qualified +
        "' transitively reaches a banned clock/entropy read (" +
        (read ? read->what : std::string("?")) + " at " +
        a.indices[g.nodes[seed].file].rel + ":" +
        std::to_string(read ? read->line : 0) +
        "); route time through the injected serve::Clock / seeded sjs::Rng, "
        "or add an audited suppression at the sanctioned seam. Chain: " +
        render_chain(g, chain);
    const std::size_t before = diags.size();
    report(file, e.site->line, e.site->col, "transitive-banned-time", msg,
           diags);
    if (diags.size() > before) diags.back().chain = chain_notes(a, chain);
  }
}

// ---------------------------------------------------------------------------
// Rule: alloc-in-hot-path
// ---------------------------------------------------------------------------

// Allocation-capable operations in functions reachable from a
// `// sjs-hot-path-root` annotation. Roots are matched by NAME (annotating
// the virtual hook declaration marks every override). Reporting is limited
// to the runtime modules — an allocation in tools/ or tests/ reached via a
// shared utility name is over-approximation noise, not a hot-path cost.
// An allow(alloc-in-hot-path) on a call line cuts that edge (audited cold
// path); on an allocation line it suppresses the finding but still lands in
// the --report=alloc work-list with suppressed=true.
void check_alloc_in_hot_path(const Analysis& a, std::vector<Diagnostic>& diags,
                             std::vector<AllocReportEntry>* report_out) {
  const CallGraph& g = a.graph;

  std::set<std::string> root_names;
  for (const FileIndex& idx : a.indices) {
    root_names.insert(idx.root_names.begin(), idx.root_names.end());
  }

  std::vector<std::size_t> seeds;
  for (std::size_t n = 0; n < g.nodes.size(); ++n) {
    if (g.nodes[n].def->is_root || root_names.count(g.nodes[n].def->name)) {
      seeds.push_back(n);
    }
  }
  if (seeds.empty()) return;

  const Reachability r =
      propagate(g, seeds, /*forward=*/true, [&](std::size_t e) {
        return edge_suppressed(a, g.edges[e], "alloc-in-hot-path");
      });

  static const std::set<std::string> kReportedModules = {
      "sim", "sched", "serve", "conc", "obs", "cluster"};
  for (std::size_t n = 0; n < g.nodes.size(); ++n) {
    if (!r.reached[n]) continue;
    const FunctionDef& fn = *g.nodes[n].def;
    if (fn.allocs.empty()) continue;
    const SourceFile& file = a.files[g.nodes[n].file];
    if (kReportedModules.count(module_of(file.rel)) == 0) continue;
    std::vector<std::size_t> chain = r.chain_to_seed(g, n, true);
    std::reverse(chain.begin(), chain.end());  // root first
    const std::string chain_str = render_chain(g, chain);
    for (const OpSite& op : fn.allocs) {
      const bool suppressed =
          is_suppressed(file, op.line, "alloc-in-hot-path");
      if (report_out != nullptr) {
        report_out->push_back({file.rel, op.line, op.what, fn.qualified,
                               suppressed, chain_str});
      }
      const std::size_t before = diags.size();
      report(file, op.line, op.col, "alloc-in-hot-path",
             "allocation-capable operation '" + op.what + "' in '" +
                 fn.qualified +
                 "' is reachable from a hot-path root; pre-size, pool, or "
                 "move it off the steady-state path — or add an audited "
                 "suppression naming why it cannot allocate in steady "
                 "state. Chain: " +
                 chain_str,
             diags);
      if (diags.size() > before) diags.back().chain = chain_notes(a, chain);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: channel-discipline
// ---------------------------------------------------------------------------

// The token-level analysis lives in the indexer (it needs the token stream);
// this rule just routes the recorded violations through the suppression
// table. A reserve that can leave the function unresolved wedges the
// consumer at that ring position — the deadlock is silent and remote.
void check_channel_discipline(const Analysis& a,
                              std::vector<Diagnostic>& diags) {
  for (std::size_t i = 0; i < a.indices.size(); ++i) {
    for (const FunctionDef& fn : a.indices[i].funcs) {
      for (const ChannelViolation& v : fn.channel_violations) {
        report(a.files[i], v.line, v.col, "channel-discipline",
               v.message + " (in '" + fn.qualified + "')", diags);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: include-cycle
// ---------------------------------------------------------------------------

// Module-level cycles in the quoted-include graph. Modules are the top-level
// directories (src/sim -> "sim"); an edge sim -> sched exists when any sim/
// file includes "sched/...". A cycle means neither module can be built,
// tested, or reasoned about without the other — the layering the include-
// hygiene rule enforces syntactically, enforced structurally. The diagnostic
// anchors at a deterministic witness: the lexicographically smallest module
// in the cycle, its lexicographically smallest file, the first include line
// that participates.
void check_include_cycle(const Analysis& a, std::vector<Diagnostic>& diags) {
  // module -> set of modules it includes, plus a witness include per edge.
  struct Witness {
    std::size_t file = 0;  // index into a.files
    std::size_t line = 0;
  };
  std::map<std::string, std::map<std::string, Witness>> edges;
  for (std::size_t i = 0; i < a.indices.size(); ++i) {
    const std::string from = module_of(a.indices[i].rel);
    if (from.empty()) continue;
    for (const IncludeSite& inc : a.indices[i].includes) {
      const std::string to = include_module(inc.path);
      if (to.empty() || to == from) continue;
      auto& slot = edges[from];
      const auto it = slot.find(to);
      // Keep the lexicographically-smallest-file, lowest-line witness.
      if (it == slot.end() ||
          std::tie(a.files[i].rel, inc.line) <
              std::tie(a.files[it->second.file].rel, it->second.line)) {
        slot[to] = {i, inc.line};
      }
    }
  }

  // Iterative Tarjan SCC over the module graph (node order: map order, so
  // deterministic).
  std::vector<std::string> modules;
  for (const auto& [m, _] : edges) modules.push_back(m);
  std::map<std::string, std::size_t> module_id;
  for (std::size_t i = 0; i < modules.size(); ++i) module_id[modules[i]] = i;

  const std::size_t n = modules.size();
  std::vector<std::vector<std::size_t>> adj(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& [to, _] : edges[modules[i]]) {
      const auto it = module_id.find(to);
      if (it != module_id.end()) adj[i].push_back(it->second);
    }
  }

  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> index(n, kNone), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  std::vector<std::vector<std::size_t>> sccs;
  std::size_t counter = 0;
  // Explicit DFS stack: (node, next-neighbor position).
  std::vector<std::pair<std::size_t, std::size_t>> dfs;
  for (std::size_t start = 0; start < n; ++start) {
    if (index[start] != kNone) continue;
    dfs.push_back({start, 0});
    while (!dfs.empty()) {
      auto& [v, pos] = dfs.back();
      if (pos == 0) {
        index[v] = low[v] = counter++;
        stack.push_back(v);
        on_stack[v] = true;
      }
      if (pos < adj[v].size()) {
        const std::size_t w = adj[v][pos++];
        if (index[w] == kNone) {
          dfs.push_back({w, 0});
        } else if (on_stack[w]) {
          low[v] = std::min(low[v], index[w]);
        }
      } else {
        if (low[v] == index[v]) {
          std::vector<std::size_t> scc;
          while (true) {
            const std::size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc.push_back(w);
            if (w == v) break;
          }
          sccs.push_back(std::move(scc));
        }
        const std::size_t done = v;
        dfs.pop_back();
        if (!dfs.empty()) {
          low[dfs.back().first] = std::min(low[dfs.back().first], low[done]);
        }
      }
    }
  }

  for (std::vector<std::size_t>& scc : sccs) {
    if (scc.size() < 2) continue;  // self-includes were filtered above
    std::sort(scc.begin(), scc.end(), [&](std::size_t x, std::size_t y) {
      return modules[x] < modules[y];
    });
    // Walk the cycle from the smallest module, always stepping to the
    // smallest in-SCC successor — a deterministic representative cycle.
    std::set<std::size_t> members(scc.begin(), scc.end());
    std::vector<std::size_t> cycle{scc[0]};
    std::set<std::size_t> seen{scc[0]};
    while (true) {
      std::size_t next = kNone;
      for (const std::size_t w : adj[cycle.back()]) {
        if (members.count(w) && (next == kNone || modules[w] < modules[next])) {
          if (!seen.count(w) || w == scc[0]) {
            next = w;
            if (w == scc[0]) break;
          }
        }
      }
      if (next == kNone || next == scc[0]) break;
      cycle.push_back(next);
      seen.insert(next);
    }
    std::string path;
    for (const std::size_t m : cycle) path += modules[m] + " -> ";
    path += modules[scc[0]];
    const Witness& w = edges[modules[cycle[0]]][modules[cycle.size() > 1
                                                            ? cycle[1]
                                                            : scc[0]]];
    const SourceFile& file = a.files[w.file];
    const std::size_t before = diags.size();
    report(file, w.line, 1, "include-cycle",
           "module include cycle: " + path +
               "; break the cycle with an interface header, a forward "
               "declaration, or by moving the shared type down a layer",
           diags);
    if (diags.size() > before) {
      std::vector<std::string> notes;
      for (const std::size_t m : cycle) notes.push_back(modules[m]);
      diags.back().chain = std::move(notes);
    }
  }
}

}  // namespace sjs::lint
