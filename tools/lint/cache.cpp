#include "lint/cache.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace fs = std::filesystem;

namespace sjs::lint {

namespace {

// Bump when the FileIndex shape or any phase-1 rule changes: a version
// mismatch discards the whole store, so stale rule output can never replay.
constexpr const char* kMagic = "sjs-lint-cache v2";

// Records are lines of \x1f-separated fields; the separator cannot appear
// in source-derived strings (it is a C0 control character the lexer would
// have to see in a source file first).
constexpr char kSep = '\x1f';

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t sep = line.find(kSep, start);
    if (sep == std::string::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, sep - start));
    start = sep + 1;
  }
}

std::size_t to_size(const std::string& s) {
  return static_cast<std::size_t>(std::strtoull(s.c_str(), nullptr, 10));
}

void write_fields(std::ostream& os, std::initializer_list<std::string> fields) {
  bool first = true;
  for (const std::string& f : fields) {
    if (!first) os << kSep;
    os << f;
    first = false;
  }
  os << '\n';
}

}  // namespace

void IndexCache::load(const fs::path& path) {
  entries_.clear();
  std::ifstream in(path);
  if (!in) return;
  std::string line;
  if (!std::getline(in, line) || line != kMagic) return;

  CacheEntry entry;
  std::string rel;
  bool open = false;
  while (std::getline(in, line)) {
    const std::vector<std::string> f = split_fields(line);
    if (f.empty()) continue;
    const std::string& tag = f[0];
    if (tag == "file" && f.size() >= 3) {
      if (open) entries_[rel] = std::move(entry);
      entry = CacheEntry{};
      rel = f[1];
      entry.hash = std::strtoull(f[2].c_str(), nullptr, 16);
      entry.index.rel = rel;
      entry.index.hash = entry.hash;
      open = true;
    } else if (!open) {
      continue;  // malformed leading record: skip until the next `file`
    } else if (tag == "fn" && f.size() >= 7) {
      FunctionDef fn;
      fn.name = f[1];
      fn.qualified = f[2];
      fn.line = to_size(f[3]);
      fn.body_begin = to_size(f[4]);
      fn.body_end = to_size(f[5]);
      fn.is_root = f[6] == "1";
      entry.index.funcs.push_back(std::move(fn));
    } else if (tag == "call" && f.size() >= 5 && !entry.index.funcs.empty()) {
      entry.index.funcs.back().calls.push_back(
          {f[1], f[2], to_size(f[3]), to_size(f[4])});
    } else if (tag == "alloc" && f.size() >= 4 && !entry.index.funcs.empty()) {
      entry.index.funcs.back().allocs.push_back(
          {f[1], to_size(f[2]), to_size(f[3])});
    } else if (tag == "banned" && f.size() >= 4 && !entry.index.funcs.empty()) {
      entry.index.funcs.back().banned.push_back(
          {f[1], to_size(f[2]), to_size(f[3])});
    } else if (tag == "chv" && f.size() >= 4 && !entry.index.funcs.empty()) {
      entry.index.funcs.back().channel_violations.push_back(
          {to_size(f[1]), to_size(f[2]), f[3]});
    } else if (tag == "inc" && f.size() >= 3) {
      entry.index.includes.push_back({f[1], to_size(f[2])});
    } else if (tag == "root" && f.size() >= 2) {
      entry.index.root_names.push_back(f[1]);
    } else if (tag == "tkd" && f.size() >= 3) {
      entry.index.tracekind_decls.emplace_back(f[1], to_size(f[2]));
    } else if (tag == "tkm" && f.size() >= 2) {
      entry.index.tracekind_mentions.push_back(f[1]);
    } else if (tag == "diag" && f.size() >= 5) {
      entry.diags.push_back({rel, to_size(f[1]), to_size(f[2]), f[3], f[4],
                             {}});
    }
  }
  if (open) entries_[rel] = std::move(entry);
}

const CacheEntry* IndexCache::lookup(const std::string& rel,
                                     std::uint64_t hash) const {
  const auto it = entries_.find(rel);
  if (it == entries_.end() || it->second.hash != hash) return nullptr;
  return &it->second;
}

void IndexCache::store(const std::string& rel, CacheEntry entry) {
  entries_[rel] = std::move(entry);
}

void IndexCache::save(const fs::path& path) const {
  std::ostringstream os;
  os << kMagic << '\n';
  for (const auto& [rel, entry] : entries_) {
    char hash_hex[17];
    std::snprintf(hash_hex, sizeof hash_hex, "%016llx",
                  static_cast<unsigned long long>(entry.hash));
    write_fields(os, {"file", rel, hash_hex});
    for (const FunctionDef& fn : entry.index.funcs) {
      write_fields(os, {"fn", fn.name, fn.qualified, std::to_string(fn.line),
                        std::to_string(fn.body_begin),
                        std::to_string(fn.body_end), fn.is_root ? "1" : "0"});
      for (const CallSite& c : fn.calls) {
        write_fields(os, {"call", c.name, c.qual, std::to_string(c.line),
                          std::to_string(c.col)});
      }
      for (const OpSite& op : fn.allocs) {
        write_fields(os, {"alloc", op.what, std::to_string(op.line),
                          std::to_string(op.col)});
      }
      for (const OpSite& op : fn.banned) {
        write_fields(os, {"banned", op.what, std::to_string(op.line),
                          std::to_string(op.col)});
      }
      for (const ChannelViolation& v : fn.channel_violations) {
        write_fields(os, {"chv", std::to_string(v.line),
                          std::to_string(v.col), v.message});
      }
    }
    for (const IncludeSite& inc : entry.index.includes) {
      write_fields(os, {"inc", inc.path, std::to_string(inc.line)});
    }
    for (const std::string& name : entry.index.root_names) {
      write_fields(os, {"root", name});
    }
    for (const auto& [name, line] : entry.index.tracekind_decls) {
      write_fields(os, {"tkd", name, std::to_string(line)});
    }
    for (const std::string& name : entry.index.tracekind_mentions) {
      write_fields(os, {"tkm", name});
    }
    for (const Diagnostic& d : entry.diags) {
      write_fields(os, {"diag", std::to_string(d.line), std::to_string(d.col),
                        d.rule, d.message});
    }
  }
  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "sjs_lint: cannot write cache %s\n",
                 path.generic_string().c_str());
    return;
  }
  out << os.str();
}

}  // namespace sjs::lint
