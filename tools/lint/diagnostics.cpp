#include "lint/diagnostics.hpp"

namespace sjs::lint {

const std::vector<std::pair<const char*, const char*>>& rule_table() {
  static const std::vector<std::pair<const char*, const char*>> kRules = {
      {"unordered-iter",
       "iteration over unordered containers in scheduler/engine/MC hot paths"},
      {"ordered-set-hot-path",
       "std::set/multiset keyed on double in sched//sim/ (use "
       "sched::ReadyQueue)"},
      {"banned-time",
       "wall-clock / ambient randomness outside util/rng and util/logging"},
      {"float-eq", "raw ==/!= on floating-point values (use util/fp.hpp)"},
      {"float-type", "float type in simulation code (double-only state)"},
      {"trace-exhaustive",
       "TraceKind enumerator unhandled by the Chrome exporter"},
      {"include-hygiene",
       "non-module-rooted include, <iostream> in a header, or file-scope "
       "using-namespace in a header"},
      {"header-guard", "header missing #pragma once"},
      {"raw-concurrency",
       "raw std::thread/mutex/atomic in serve//sched/ (use conc::Channel / "
       "conc::ShardSet)"},
      {"timer-wheel-bypass",
       "kTimer event pushed past the timer wheel in sim/ (use "
       "Engine::set_timer)"},
      {"bad-suppression", "malformed sjs-lint allow() comment"},
      {"transitive-banned-time",
       "call closure reaches a banned clock/entropy read (chain reported)"},
      {"alloc-in-hot-path",
       "allocation-capable operation reachable from a sjs-hot-path-root"},
      {"channel-discipline",
       "conc::Channel::reserve without commit/abort on every token-level "
       "path"},
      {"include-cycle", "module-level cycle in the include graph"},
  };
  return kRules;
}

bool is_known_rule(const std::string& id) {
  for (const auto& [name, desc] : rule_table()) {
    if (id == name) return true;
  }
  return false;
}

}  // namespace sjs::lint
