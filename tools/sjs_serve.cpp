// sjs_serve — real-time job-admission daemon (docs/serving.md).
//
// Listens on loopback for length-prefixed protocol frames, admits jobs into
// a live sim::Engine driven by the chosen scheduler against wall-clock time
// (optionally accelerated), journals every admission so the session replays
// bit-exactly through sjs_sim, and drains gracefully on SIGINT/SIGTERM or a
// client DRAIN request.
//
//   sjs_serve [--port=0] [--scheduler=V-Dover] [--journal=DIR]
//             [--c-lo=1] [--c-hi=1] [--accel=1] [--max-in-flight=1024]
//             [--no-admission-check] [--trace-ring=4096] [--metrics]
//             [--shards=1] [--channel-capacity=1024]
//             [--cluster=0] [--cluster-key=deadline] [--rental=threshold]
//             [--budget=0] [--min-rented=1]
//
// --shards=N with N >= 2 runs the sharded admission plane (an acceptor
// thread + N engine shards behind bounded channels, docs/serving.md): jobs
// route by splitmix64 over their dense global ticket, each shard journals
// its own replayable bundle to <journal>/shard<k>, and --max-in-flight
// applies per shard. N = 1 keeps the classic single-threaded server.
//
// --cluster=K with K >= 1 serves against an elastic heterogeneous fleet of
// K machines (docs/cluster.md): a live cloud::MultiEngine scheduled by
// cluster::Dispatcher (global EDF or HVDF over the rented machines, rental
// policy from --rental, optional --budget cap). The journal is a cluster
// bundle replayable with `sjs_sim --cluster-bundle=DIR`. Exclusive with
// --shards >= 2; --scheduler and --c-lo/--c-hi are ignored in cluster mode.
//
// The capacity profile is constant at c-hi for the session (a live service
// observes its own rate; the declared band is what the algorithms consume).
// Prints "LISTENING <port>" on stdout once ready — scripts wait for it.
#include <csignal>
#include <cstdio>
#include <fcntl.h>
#include <unistd.h>

#include "cluster/cluster_server.hpp"
#include "obs/metrics.hpp"
#include "sched/factory.hpp"
#include "serve/clock.hpp"
#include "serve/server.hpp"
#include "serve/sharded_server.hpp"
#include "util/cli.hpp"

namespace {

// Self-pipe: the handler only writes one byte; the event loop wakes, drains
// the pipe, and starts the graceful drain on the main thread.
int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

}  // namespace

int main(int argc, char** argv) {
  sjs::CliFlags flags;
  flags.add_int("port", 0, "loopback port to listen on (0 = ephemeral)");
  flags.add_string("scheduler", "V-Dover",
                   "scheduler name (see sjs_sim --list-schedulers)");
  flags.add_string("journal", "",
                   "journal directory — written as a replayable instance "
                   "bundle (empty = no journal)");
  flags.add_double("c-lo", 1.0, "declared band floor (admission + V-Dover)");
  flags.add_double("c-hi", 1.0, "declared band ceiling = served rate");
  flags.add_double("accel", 1.0, "virtual seconds per wall second");
  flags.add_int("max-in-flight", 1024,
                "admitted-but-unresolved job limit; beyond it submits SHED");
  flags.add_bool("no-admission-check", false,
                 "admit individually-inadmissible jobs too (Thm. 3(3) off)");
  flags.add_int("trace-ring", 4096, "recent trace events kept (0 = off)");
  flags.add_bool("metrics", false, "print the server.* metrics at drain");
  flags.add_int("shards", 1,
                "engine shards (>= 2 enables the sharded admission plane)");
  flags.add_int("channel-capacity", 1024,
                "per-shard request channel slots (sharded plane only)");
  flags.add_int("cluster", 0,
                "fleet size (>= 1 serves an elastic heterogeneous cluster)");
  flags.add_string("cluster-key", "deadline",
                   "cluster placement key: deadline | density");
  flags.add_string("rental", "threshold",
                   "cluster rental policy: static | threshold | load");
  flags.add_double("budget", 0.0,
                   "total cluster rental budget (<= 0 = unlimited)");
  flags.add_int("min-rented", 1, "machines the cluster never releases below");
  if (!flags.parse(argc, argv)) {
    if (!flags.error().empty()) {
      std::fprintf(stderr, "%s\n", flags.error().c_str());
      return 1;
    }
    return 0;
  }

  const double c_lo = flags.get_double("c-lo");
  const double c_hi = flags.get_double("c-hi");
  if (!(c_lo > 0.0) || c_hi < c_lo) {
    std::fprintf(stderr, "need 0 < c-lo <= c-hi\n");
    return 1;
  }
  // Reject zero/negative (and non-finite) numeric flags up front: a bad
  // --accel wedges the clock bridge, a zero --max-in-flight sheds every
  // submit, a zero --channel-capacity deadlocks the sharded plane.
  if (!flags.require_positive("accel") ||
      !flags.require_positive("max-in-flight") ||
      !flags.require_positive("channel-capacity") ||
      !flags.require_positive("shards") ||
      !flags.require_at_least("trace-ring", 0)) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 1;
  }

  const long cluster_k = flags.get_int("cluster");
  if (cluster_k < 0) {
    std::fprintf(stderr, "--cluster must be >= 0\n");
    return 1;
  }
  if (cluster_k > 0) {
    if (flags.get_int("shards") >= 2) {
      std::fprintf(stderr, "--cluster and --shards >= 2 are exclusive\n");
      return 1;
    }
    const std::string key_name = flags.get_string("cluster-key");
    if (key_name != "deadline" && key_name != "density") {
      std::fprintf(stderr, "unknown --cluster-key \"%s\" (deadline|density)\n",
                   key_name.c_str());
      return 1;
    }
    sjs::cluster::ClusterServerConfig config;
    config.fleet =
        sjs::cluster::Fleet::heterogeneous(static_cast<std::size_t>(cluster_k));
    config.key = key_name == "deadline" ? sjs::cloud::GlobalKey::kDeadline
                                        : sjs::cloud::GlobalKey::kValueDensity;
    config.rental = flags.get_string("rental");
    config.budget = flags.get_double("budget");
    const long min_rented = flags.get_int("min-rented");
    if (min_rented < 1 || min_rented > cluster_k) {
      std::fprintf(stderr, "--min-rented must be in [1, --cluster]\n");
      return 1;
    }
    config.min_rented = static_cast<std::size_t>(min_rented);
    config.port = static_cast<int>(flags.get_int("port"));
    config.journal_dir = flags.get_string("journal");
    config.accel = flags.get_double("accel");
    config.max_in_flight =
        static_cast<std::uint64_t>(flags.get_int("max-in-flight"));
    config.admission_check = !flags.get_bool("no-admission-check");
    config.trace_ring = static_cast<std::size_t>(flags.get_int("trace-ring"));
    try {
      // Validate the rental policy name before binding the port.
      sjs::cluster::make_rental_controller(config.rental);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }

    sjs::obs::MetricsRegistry registry;
    sjs::serve::SystemClock clock;
    if (::pipe(g_signal_pipe) != 0) {
      std::perror("pipe");
      return 1;
    }
    for (int fd : g_signal_pipe) {
      const int fl = ::fcntl(fd, F_GETFL, 0);
      if (fl >= 0) ::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
    }
    struct sigaction sa {};
    sa.sa_handler = on_signal;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);

    sjs::cluster::ClusterServer server(config, clock, &registry);
    int port = 0;
    try {
      port = server.start();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "failed to start: %s\n", e.what());
      return 1;
    }
    server.watch_shutdown_fd(g_signal_pipe[0]);
    std::printf("LISTENING %d\n", port);
    std::fflush(stdout);

    server.run();

    const auto& result = server.result();
    std::printf("drained: cluster of %zu (%s): %llu completed, %llu expired, "
                "value %.3f/%.3f, rental cost %.3f, peak %llu machines, "
                "%llu migrations\n",
                server.fleet().size(), result.scheduler_name.c_str(),
                static_cast<unsigned long long>(result.completed_count),
                static_cast<unsigned long long>(result.expired_count),
                result.completed_value, result.generated_value,
                result.rental_cost,
                static_cast<unsigned long long>(result.rented_peak),
                static_cast<unsigned long long>(result.migrations));
    bool cluster_journal_failed = false;
    if (!server.journal_error().empty()) {
      std::fprintf(stderr, "journal failure: %s\n",
                   server.journal_error().c_str());
      cluster_journal_failed = true;
    }
    const auto stats = server.stats();
    std::printf("server: %llu submitted, %llu accepted, %llu rejected, "
                "%llu shed, %llu completed, %llu expired, %llu cancelled\n",
                static_cast<unsigned long long>(stats.submitted),
                static_cast<unsigned long long>(stats.accepted),
                static_cast<unsigned long long>(stats.rejected),
                static_cast<unsigned long long>(stats.shed),
                static_cast<unsigned long long>(stats.completed),
                static_cast<unsigned long long>(stats.expired),
                static_cast<unsigned long long>(stats.cancelled));
    if (!config.journal_dir.empty()) {
      std::printf("journal: %s (replay with sjs_sim --cluster-bundle=%s "
                  "--outcomes-csv=...)\n",
                  config.journal_dir.c_str(), config.journal_dir.c_str());
    }
    if (flags.get_bool("metrics")) {
      std::printf("\nmetrics:\n%s", registry.render().c_str());
    }
    return cluster_journal_failed ? 1 : 0;
  }

  const auto lineup = sjs::sched::full_lineup(c_lo, c_hi);
  const auto* factory =
      sjs::sched::find_factory(lineup, flags.get_string("scheduler"));
  if (!factory) {
    std::fprintf(stderr, "unknown scheduler \"%s\" — see sjs_sim "
                 "--list-schedulers\n",
                 flags.get_string("scheduler").c_str());
    return 1;
  }

  sjs::serve::ServerConfig config;
  config.scheduler_name = factory->name;
  config.capacity = sjs::cap::CapacityProfile(c_hi);
  config.c_lo = c_lo;
  config.c_hi = c_hi;
  config.port = static_cast<int>(flags.get_int("port"));
  config.journal_dir = flags.get_string("journal");
  config.accel = flags.get_double("accel");
  config.max_in_flight =
      static_cast<std::uint64_t>(flags.get_int("max-in-flight"));
  config.admission_check = !flags.get_bool("no-admission-check");
  config.trace_ring =
      static_cast<std::size_t>(flags.get_int("trace-ring"));
  config.shards = static_cast<std::size_t>(flags.get_int("shards"));
  config.channel_capacity =
      static_cast<std::size_t>(flags.get_int("channel-capacity"));

  sjs::obs::MetricsRegistry registry;
  sjs::serve::SystemClock clock;

  if (::pipe(g_signal_pipe) != 0) {
    std::perror("pipe");
    return 1;
  }
  // Both ends nonblocking: the wake handler drains the pipe until EAGAIN,
  // and the signal handler must never block on a full pipe.
  for (int fd : g_signal_pipe) {
    const int fl = ::fcntl(fd, F_GETFL, 0);
    if (fl >= 0) ::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
  }
  struct sigaction sa {};
  sa.sa_handler = on_signal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  const auto print_stats = [](const sjs::serve::StatsBody& stats) {
    std::printf("server: %llu submitted, %llu accepted, %llu rejected, "
                "%llu shed, %llu completed, %llu expired, %llu cancelled\n",
                static_cast<unsigned long long>(stats.submitted),
                static_cast<unsigned long long>(stats.accepted),
                static_cast<unsigned long long>(stats.rejected),
                static_cast<unsigned long long>(stats.shed),
                static_cast<unsigned long long>(stats.completed),
                static_cast<unsigned long long>(stats.expired),
                static_cast<unsigned long long>(stats.cancelled));
  };

  bool journal_failed = false;
  if (config.shards >= 2) {
    sjs::serve::ShardedAdmissionServer server(
        config, [&] { return factory->make(); }, clock, &registry);
    int port = 0;
    try {
      port = server.start();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "failed to start: %s\n", e.what());
      return 1;
    }
    server.watch_shutdown_fd(g_signal_pipe[0]);
    std::printf("LISTENING %d\n", port);
    std::fflush(stdout);

    server.run();

    for (std::size_t k = 0; k < server.shard_count(); ++k) {
      std::printf("shard %zu drained: %s\n", k,
                  server.shard(k).result().to_string().c_str());
      if (!server.shard(k).journal_error().empty()) {
        std::fprintf(stderr, "shard %zu journal failure: %s\n", k,
                     server.shard(k).journal_error().c_str());
        journal_failed = true;
      }
    }
    print_stats(server.stats());
    if (!config.journal_dir.empty()) {
      std::printf("journal: %s (per-shard bundles; replay shard k with "
                  "sjs_sim --bundle=%s/shard<k> --scheduler=\"%s\" "
                  "--outcomes-csv=...)\n",
                  config.journal_dir.c_str(), config.journal_dir.c_str(),
                  config.scheduler_name.c_str());
    }
  } else {
    sjs::serve::AdmissionServer server(config, factory->make(), clock,
                                       &registry);
    int port = 0;
    try {
      port = server.start();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "failed to start: %s\n", e.what());
      return 1;
    }
    server.watch_shutdown_fd(g_signal_pipe[0]);
    std::printf("LISTENING %d\n", port);
    std::fflush(stdout);

    server.run();

    const auto& result = server.result();
    std::printf("drained: %s\n", result.to_string().c_str());
    if (!server.journal_error().empty()) {
      std::fprintf(stderr, "journal failure: %s\n",
                   server.journal_error().c_str());
      journal_failed = true;
    }
    print_stats(server.stats());
    if (!config.journal_dir.empty()) {
      std::printf("journal: %s (replay with sjs_sim --bundle=%s "
                  "--scheduler=\"%s\" --outcomes-csv=...)\n",
                  config.journal_dir.c_str(), config.journal_dir.c_str(),
                  config.scheduler_name.c_str());
    }
  }
  if (flags.get_bool("metrics")) {
    std::printf("\nmetrics:\n%s", registry.render().c_str());
  }
  return journal_failed ? 1 : 0;
}
